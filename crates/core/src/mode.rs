//! One front door for every error-control mode.
//!
//! §II-B of the paper surveys the mode landscape (ISABELA's pointwise
//! relative, ZFP's fixed-accuracy/rate/precision, SZ's three bounds) and
//! §IV adds fixed-PSNR to it. This module exposes that whole landscape as
//! a single enum + dispatcher, so callers (the CLI, batch drivers,
//! downstream users) pick a *goal* instead of a pipeline:
//!
//! - the pointwise modes and fixed-PSNR resolve analytically and cost one
//!   compression;
//! - [`CompressionMode::ByteBudget`] — "make it fit in N bytes" — has no
//!   closed form for a prediction-based codec, so it bisects the bound on
//!   *compressed size* (compression-only probes, no decompression), the
//!   cheapest correct strategy.

use crate::bound::ebrel_for_psnr;
use crate::fixed_ratio::{compress_fixed_ratio, FixedRatioOptions};
use ndfield::{Field, Scalar};
use szlike::{compress, ErrorBound, SzConfig, SzError};

/// A user-level compression goal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionMode {
    /// `|x − x̃| ≤ eb` per sample.
    Abs(f64),
    /// `|x − x̃| ≤ eb · (max − min)` per sample.
    ValueRangeRel(f64),
    /// `|x − x̃| ≤ eb · |x|` per sample (log-transform pipeline).
    PointwiseRel(f64),
    /// Overall PSNR ≥ (approximately) the target — the paper's mode.
    FixedPsnr(f64),
    /// Compression ratio ≈ the target (±10%), via ratio–quality modeling:
    /// one pilot walk predicts the bound, at most two secant refinements
    /// close the residual. See [`crate::fixed_ratio`].
    FixedRatio(f64),
    /// Compressed size ≤ the budget, with the best quality that fits.
    ByteBudget(usize),
}

/// What a [`compress_with_mode`] call resolved to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeReport {
    /// The value-range-relative bound the run effectively used (NaN for
    /// pointwise-relative, which does not reduce to one).
    pub effective_ebrel: f64,
    /// Compressor invocations spent (1 for analytic modes).
    pub invocations: usize,
}

/// Compress under any [`CompressionMode`].
///
/// # Errors
/// [`SzError`] from the pipeline; [`SzError::BadBound`] when a byte budget
/// is unreachable even at the loosest sensible bound.
pub fn compress_with_mode<T: Scalar>(
    field: &Field<T>,
    mode: CompressionMode,
    base: &SzConfig,
) -> Result<(Vec<u8>, ModeReport), SzError> {
    let with_bound = |b: ErrorBound| SzConfig { bound: b, ..*base };
    match mode {
        CompressionMode::Abs(eb) => {
            let bytes = compress(field, &with_bound(ErrorBound::Abs(eb)))?;
            let vr = field.value_range();
            Ok((
                bytes,
                ModeReport {
                    effective_ebrel: if vr > 0.0 { eb / vr } else { f64::NAN },
                    invocations: 1,
                },
            ))
        }
        CompressionMode::ValueRangeRel(eb) => {
            let bytes = compress(field, &with_bound(ErrorBound::ValueRangeRel(eb)))?;
            Ok((
                bytes,
                ModeReport {
                    effective_ebrel: eb,
                    invocations: 1,
                },
            ))
        }
        CompressionMode::PointwiseRel(eb) => {
            let bytes = compress(field, &with_bound(ErrorBound::PointwiseRel(eb)))?;
            Ok((
                bytes,
                ModeReport {
                    effective_ebrel: f64::NAN,
                    invocations: 1,
                },
            ))
        }
        CompressionMode::FixedPsnr(target) => {
            let ebrel = ebrel_for_psnr(target);
            let bytes = compress(field, &with_bound(ErrorBound::ValueRangeRel(ebrel)))?;
            Ok((
                bytes,
                ModeReport {
                    effective_ebrel: ebrel,
                    invocations: 1,
                },
            ))
        }
        CompressionMode::FixedRatio(target) => {
            let opts = FixedRatioOptions {
                quant_bins: base.quant_bins,
                auto_intervals: base.auto_intervals,
                lossless: base.lossless,
                threads: base.threads,
                block_rows: base.block_rows,
                ..FixedRatioOptions::new(target)
            };
            let run = compress_fixed_ratio(field, &opts)?;
            Ok((
                run.bytes,
                ModeReport {
                    effective_ebrel: run.eb_rel,
                    invocations: run.passes,
                },
            ))
        }
        CompressionMode::ByteBudget(budget) => byte_budget(field, budget, base),
    }
}

/// Bisection on `log10(eb_rel)` against compressed size. Size is monotone
/// non-increasing in the bound, so bisection converges; probes never
/// decompress.
fn byte_budget<T: Scalar>(
    field: &Field<T>,
    budget: usize,
    base: &SzConfig,
) -> Result<(Vec<u8>, ModeReport), SzError> {
    const MAX_PROBES: usize = 14;
    let probe = |log_eb: f64| -> Result<Vec<u8>, SzError> {
        let cfg = SzConfig {
            bound: ErrorBound::ValueRangeRel(10.0f64.powf(log_eb)),
            ..*base
        };
        compress(field, &cfg)
    };
    let mut invocations = 0usize;
    // Loosest sensible bound first: if even that misses, the budget is
    // unreachable for this field.
    let mut lo = -9.0f64; // tight
    let mut hi = -0.3f64; // loose
    invocations += 1;
    let loose = probe(hi)?;
    if loose.len() > budget {
        return Err(SzError::BadBound(format!(
            "byte budget {budget} unreachable: loosest bound still needs {} bytes",
            loose.len()
        )));
    }
    let mut best = (hi, loose);
    while invocations < MAX_PROBES {
        let mid = (lo + hi) / 2.0;
        invocations += 1;
        let bytes = probe(mid)?;
        if bytes.len() <= budget {
            // Fits: try a tighter bound (better quality).
            if mid < best.0 {
                best = (mid, bytes);
            }
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (log_eb, bytes) = best;
    Ok((
        bytes,
        ModeReport {
            effective_ebrel: 10.0f64.powf(log_eb),
            invocations,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsnr_metrics::Distortion;
    use szlike::decompress;

    fn field() -> Field<f32> {
        // The product term matters: a separable sum f(i)+g(j) is predicted
        // *exactly* by Lorenzo-2D, leaving only round-off noise — a
        // degenerate rate curve nothing rate-targeted can invert.
        Field::from_fn_2d(90, 90, |i, j| {
            ((i as f32 * 0.11).sin() + (j as f32 * 0.07).cos()) * 12.0
                + ((i as f32 * 0.31).sin() * (j as f32 * 0.23).cos()) * 1.5
        })
    }

    #[test]
    fn analytic_modes_cost_one_invocation() {
        let f = field();
        let base = SzConfig::new(ErrorBound::Abs(1.0));
        for mode in [
            CompressionMode::Abs(1e-3),
            CompressionMode::ValueRangeRel(1e-4),
            CompressionMode::PointwiseRel(1e-3),
            CompressionMode::FixedPsnr(70.0),
        ] {
            let (bytes, report) = compress_with_mode(&f, mode, &base).unwrap();
            assert_eq!(report.invocations, 1, "{mode:?}");
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.shape(), f.shape());
        }
    }

    #[test]
    fn fixed_psnr_mode_matches_direct_driver() {
        let f = field();
        let base = SzConfig::new(ErrorBound::Abs(1.0));
        let (bytes, report) =
            compress_with_mode(&f, CompressionMode::FixedPsnr(80.0), &base).unwrap();
        assert!((report.effective_ebrel - ebrel_for_psnr(80.0)).abs() < 1e-15);
        let back: Field<f32> = decompress(&bytes).unwrap();
        let psnr = Distortion::between(&f, &back).psnr();
        assert!((psnr - 80.0).abs() < 4.0, "psnr {psnr}");
    }

    #[test]
    fn fixed_ratio_mode_lands_in_band() {
        let f = field();
        let base = SzConfig::new(ErrorBound::Abs(1.0));
        let (bytes, report) =
            compress_with_mode(&f, CompressionMode::FixedRatio(10.0), &base).unwrap();
        let achieved = (f.len() * 4) as f64 / bytes.len() as f64;
        assert!(
            (achieved / 10.0 - 1.0).abs() <= 0.1,
            "achieved {achieved:.2}x, wanted 10x +/-10%"
        );
        assert!(report.invocations <= 3, "{} passes", report.invocations);
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back.shape(), f.shape());
    }

    #[test]
    fn byte_budget_fits_and_maximises_quality() {
        let f = field();
        let base = SzConfig::new(ErrorBound::Abs(1.0));
        let budget = f.len(); // 1/4 of raw size (4 B/sample)
        let (bytes, report) =
            compress_with_mode(&f, CompressionMode::ByteBudget(budget), &base).unwrap();
        assert!(bytes.len() <= budget, "{} > {budget}", bytes.len());
        assert!(report.invocations > 2, "bisection suspiciously cheap");
        // A clearly looser bound must not beat the found quality by much:
        // the search's bound should be within ~2x of the tightest that fits.
        let back: Field<f32> = decompress(&bytes).unwrap();
        let psnr = Distortion::between(&f, &back).psnr();
        assert!(psnr > 40.0, "budgeted quality only {psnr} dB");
    }

    #[test]
    fn impossible_budget_errors() {
        let f = field();
        let base = SzConfig::new(ErrorBound::Abs(1.0));
        let res = compress_with_mode(&f, CompressionMode::ByteBudget(8), &base);
        assert!(matches!(res, Err(SzError::BadBound(_))));
    }
}
