//! PSNR ↔ error-bound inversions (paper Eq. 7–8).
//!
//! The whole fixed-PSNR mode is Eq. 8: given a target PSNR, the
//! value-range-relative bound to hand to unmodified SZ is
//! `eb_rel = √3 · 10^(−PSNR/20)`.

use crate::distortion::psnr_sz_estimate;

/// Eq. 8: value-range-relative error bound achieving (approximately) the
/// target PSNR under SZ's uniform quantization.
///
/// ```
/// let eb = fpsnr_core::ebrel_for_psnr(40.0);
/// assert!((eb - 3.0f64.sqrt() * 1e-2).abs() < 1e-12);
/// // Exact inverse of the Eq. 7 forward direction:
/// assert!((fpsnr_core::psnr_for_ebrel(eb) - 40.0).abs() < 1e-9);
/// ```
pub fn ebrel_for_psnr(target_psnr: f64) -> f64 {
    3.0f64.sqrt() * 10.0f64.powf(-target_psnr / 20.0)
}

/// Absolute error bound achieving the target PSNR on data with value range
/// `vr` (Eq. 8 scaled by the range).
pub fn ebabs_for_psnr(target_psnr: f64, vr: f64) -> f64 {
    ebrel_for_psnr(target_psnr) * vr
}

/// Forward direction (Eq. 7 in relative form): PSNR predicted for a given
/// value-range-relative bound. Exact inverse of [`ebrel_for_psnr`].
pub fn psnr_for_ebrel(ebrel: f64) -> f64 {
    // Eq. 7 with vr/eb_abs = 1/eb_rel.
    psnr_sz_estimate(1.0, ebrel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_reference_points() {
        // PSNR = 20·log10(1/ebrel) + 10·log10 3  ⇔  ebrel = √3·10^(−PSNR/20)
        // Spot values: PSNR 40 ⇒ ebrel = √3·10⁻² ≈ 0.01732.
        let e = ebrel_for_psnr(40.0);
        assert!((e - 0.017320508).abs() < 1e-8, "{e}");
        // PSNR 120 ⇒ √3·1e-6.
        assert!((ebrel_for_psnr(120.0) - 1.7320508e-6).abs() < 1e-12);
    }

    #[test]
    fn inversion_is_exact() {
        for target in [20.0, 40.0, 60.0, 80.0, 100.0, 120.0] {
            let eb = ebrel_for_psnr(target);
            let back = psnr_for_ebrel(eb);
            assert!((back - target).abs() < 1e-9, "{target} -> {eb} -> {back}");
        }
    }

    #[test]
    fn ebabs_scales_with_range() {
        let vr = 250.0;
        assert!((ebabs_for_psnr(60.0, vr) - ebrel_for_psnr(60.0) * vr).abs() < 1e-12);
    }

    #[test]
    fn higher_target_means_tighter_bound() {
        assert!(ebrel_for_psnr(100.0) < ebrel_for_psnr(50.0));
    }

    proptest! {
        #[test]
        fn roundtrip_over_continuum(target in 1.0f64..200.0) {
            let back = psnr_for_ebrel(ebrel_for_psnr(target));
            prop_assert!((back - target).abs() < 1e-8);
        }

        #[test]
        fn ebrel_monotone_decreasing(a in 1.0f64..199.0, d in 0.01f64..50.0) {
            prop_assert!(ebrel_for_psnr(a + d) < ebrel_for_psnr(a));
        }
    }
}
