//! The pre-paper baseline: iterate the compressor until the PSNR lands.
//!
//! §I of the paper motivates fixed-PSNR by what users previously had to do:
//! "run the lossy compressor multiple times each with different error-bound
//! settings, a tedious and time-consuming task". This module implements
//! that baseline faithfully — bisection on `log₁₀(eb_rel)` with a
//! compress + decompress + measure cycle per probe — so the
//! `search_vs_fixed` experiment can quantify exactly how many full
//! compressor invocations Eq. 8 eliminates.

use fpsnr_metrics::Distortion;
use ndfield::{Field, Scalar};
use szlike::{compress, decompress, ErrorBound, SzConfig, SzError};

/// Result of the iterative-search baseline.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The final compressed container.
    pub bytes: Vec<u8>,
    /// Bound the search converged to.
    pub final_ebrel: f64,
    /// Achieved PSNR at the final bound.
    pub achieved_psnr: f64,
    /// Full compress+decompress+measure cycles consumed.
    pub invocations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Bisection search for a bound whose achieved PSNR lies within
/// `tolerance_db` *above* the target (the user wants "at least the target,
/// but not wastefully more").
///
/// Starts from the bracket `eb_rel ∈ [10⁻⁹, 0.5]` — PSNRs roughly in
/// (6, 185) dB — which covers every realistic demand.
///
/// # Errors
/// [`SzError`] propagated from the compressor.
pub fn search_to_target_psnr<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    tolerance_db: f64,
    max_invocations: usize,
) -> Result<SearchResult, SzError> {
    let _total = fpsnr_obs::span("search.run");
    // log10 bracket: lo = tightest bound (highest PSNR).
    let mut lo = -9.0f64;
    let mut hi = -0.3f64;
    let mut invocations = 0usize;
    let mut best: Option<(f64, f64, Vec<u8>)> = None; // (ebrel, psnr, bytes)

    let probe = |ebrel: f64, invocations: &mut usize| -> Result<(f64, Vec<u8>), SzError> {
        *invocations += 1;
        // One probe = one full compress + decompress + measure cycle; the
        // span count is the paper's "invocations eliminated" metric.
        let _probe_span = fpsnr_obs::span("search.probe");
        if fpsnr_obs::is_enabled() {
            fpsnr_obs::add("search.invocations", 1);
        }
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
        let bytes = compress(field, &cfg)?;
        let back: Field<T> = decompress(&bytes)?;
        Ok((Distortion::between(field, &back).psnr(), bytes))
    };

    while invocations < max_invocations {
        let mid = (lo + hi) / 2.0;
        let ebrel = 10.0f64.powf(mid);
        let (psnr, bytes) = probe(ebrel, &mut invocations)?;
        if psnr >= target_psnr {
            // Meets the demand: remember it, then try a looser bound
            // (bigger eb ⇒ lower PSNR ⇒ smaller output).
            let better = match &best {
                None => true,
                Some((_, best_psnr, _)) => psnr < *best_psnr,
            };
            if better {
                best = Some((ebrel, psnr, bytes));
            }
            if psnr <= target_psnr + tolerance_db {
                let (final_ebrel, achieved_psnr, bytes) = best.expect("just set");
                return Ok(SearchResult {
                    bytes,
                    final_ebrel,
                    achieved_psnr,
                    invocations,
                    converged: true,
                });
            }
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Cap hit: fall back to the best bound that met the target, or the
    // tightest probe if none did.
    match best {
        Some((final_ebrel, achieved_psnr, bytes)) => Ok(SearchResult {
            bytes,
            final_ebrel,
            achieved_psnr,
            invocations,
            converged: false,
        }),
        None => {
            let ebrel = 10.0f64.powf(lo);
            let (achieved_psnr, bytes) = probe(ebrel, &mut invocations)?;
            Ok(SearchResult {
                bytes,
                final_ebrel: ebrel,
                achieved_psnr,
                invocations,
                converged: false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field<f32> {
        Field::from_fn_2d(80, 90, |i, j| {
            ((i as f32 * 0.1).sin() + (j as f32 * 0.07).cos()) * 15.0
        })
    }

    #[test]
    fn search_meets_target() {
        let f = field();
        let r = search_to_target_psnr(&f, 70.0, 3.0, 40).unwrap();
        assert!(r.converged, "did not converge in {} probes", r.invocations);
        assert!(
            r.achieved_psnr >= 70.0 && r.achieved_psnr <= 76.0,
            "achieved {}",
            r.achieved_psnr
        );
    }

    #[test]
    fn search_needs_multiple_invocations() {
        // The whole point of the paper: the baseline is expensive.
        let f = field();
        let r = search_to_target_psnr(&f, 85.0, 1.0, 40).unwrap();
        assert!(
            r.invocations >= 3,
            "bisection landed suspiciously fast: {}",
            r.invocations
        );
    }

    #[test]
    fn cap_returns_best_found() {
        let f = field();
        // Tolerance 0.0001 dB is unreachable; the cap must kick in and the
        // result must still meet the target.
        let r = search_to_target_psnr(&f, 60.0, 0.0001, 8).unwrap();
        assert!(!r.converged);
        assert!(r.achieved_psnr >= 60.0);
        assert!(r.invocations <= 8);
    }

    #[test]
    fn final_bytes_match_final_bound() {
        let f = field();
        let r = search_to_target_psnr(&f, 50.0, 2.0, 40).unwrap();
        let back: Field<f32> = decompress(&r.bytes).unwrap();
        let psnr = Distortion::between(&f, &back).psnr();
        assert!((psnr - r.achieved_psnr).abs() < 1e-9);
    }
}
