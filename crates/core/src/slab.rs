//! Slab-parallel compression of a single large field.
//!
//! The batch runner parallelises *across* fields, but a single NYX-scale
//! field (2048³ ≈ 32 GiB) also needs parallelism *within* the field. The
//! SZ walk is sequential by construction (each prediction reads the
//! reconstructed prefix), so the standard trick — used by SZ's own MPI
//! deployments — is to split the slowest-varying axis into independent
//! slabs and compress each separately.
//!
//! Consequences, all preserved here:
//! - the error bound holds per sample (each slab is a complete SZ stream),
//! - the fixed-PSNR estimate still applies — Eq. 6 does not care where the
//!   quantized stream boundaries fall, **provided all slabs share one
//!   `eb_abs`** (derived from the *global* value range, not per slab, which
//!   would otherwise skew per-slab PSNR),
//! - ratio degrades slightly (prediction restarts at every slab face).
//!
//! Container: `b"SLB1"`, slab count, then length-prefixed SZ containers.

use crate::bound::ebrel_for_psnr;
use fpsnr_parallel::par_map;
use losslesskit::varint;
use ndfield::{Field, Scalar, Shape};
use szlike::{ErrorBound, SzConfig, SzError};

/// Container magic for slab-parallel streams.
const MAGIC: [u8; 4] = *b"SLB1";

/// Split a shape into at most `want` slabs along axis 0, each itself a
/// valid shape. Returns the row ranges.
fn slab_ranges(shape: Shape, want: usize) -> Vec<(usize, usize)> {
    let d0 = shape.dims()[0];
    let n = want.max(1).min(d0);
    let base = d0 / n;
    let extra = d0 % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for k in 0..n {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

fn slab_shape(shape: Shape, rows: usize) -> Shape {
    match shape {
        Shape::D1(_) => Shape::D1(rows),
        Shape::D2(_, c) => Shape::D2(rows, c),
        Shape::D3(_, b, c) => Shape::D3(rows, b, c),
    }
}

/// Compress `field` as `slabs` independent SZ streams in parallel, all
/// sharing one absolute bound derived from the *global* value range.
///
/// # Errors
/// [`SzError`] from any slab's compression (first failure wins).
pub fn compress_slabs<T: Scalar>(
    field: &Field<T>,
    cfg: &SzConfig,
    slabs: usize,
    threads: usize,
) -> Result<Vec<u8>, SzError> {
    cfg.validate()?;
    // Resolve relative bounds against the GLOBAL range once.
    let vr = field.value_range();
    let eb_abs = cfg.bound.absolute(vr)?;
    let slab_cfg = SzConfig {
        bound: if matches!(cfg.bound, ErrorBound::PointwiseRel(_)) {
            cfg.bound // pointwise-relative is already range-independent
        } else {
            ErrorBound::Abs(eb_abs)
        },
        // Slab parallelism IS the outer parallelism: each slab must stay a
        // monolithic SZ stream (no nested pools, and the container layout
        // stays what SLB1 readers expect).
        threads: 1,
        block_rows: 0,
        ..*cfg
    };
    let shape = field.shape();
    let ranges = slab_ranges(shape, slabs);
    let row_elems = shape.len() / shape.dims()[0];
    let parts: Vec<Result<Vec<u8>, SzError>> = par_map(&ranges, threads, |&(lo, hi)| {
        let sub_shape = slab_shape(shape, hi - lo);
        let sub = Field::from_vec(
            sub_shape,
            field.as_slice()[lo * row_elems..hi * row_elems].to_vec(),
        );
        szlike::compress(&sub, &slab_cfg)
    });
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    varint::write_u64(&mut out, ranges.len() as u64);
    for part in parts {
        let bytes = part?;
        varint::write_u64(&mut out, bytes.len() as u64);
        out.extend_from_slice(&bytes);
    }
    Ok(out)
}

/// Fixed-PSNR entry point for slab-parallel compression: Eq. 8 against the
/// global range, then [`compress_slabs`].
///
/// # Errors
/// [`SzError`] from the underlying pipeline.
pub fn compress_slabs_fixed_psnr<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    slabs: usize,
    threads: usize,
) -> Result<Vec<u8>, SzError> {
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel_for_psnr(target_psnr)))
        .with_auto_intervals(true);
    compress_slabs(field, &cfg, slabs, threads)
}

/// Decompress a slab container (slabs decode in parallel, then concatenate).
///
/// # Errors
/// [`SzError::Format`] on container violations; slab errors propagate.
pub fn decompress_slabs<T: Scalar>(src: &[u8], threads: usize) -> Result<Field<T>, SzError> {
    if src.len() < 5 || src[..4] != MAGIC {
        return Err(SzError::Format("bad slab magic"));
    }
    let mut pos = 4usize;
    let n_slabs = varint::read_u64(src, &mut pos)? as usize;
    if n_slabs == 0 || n_slabs > (1 << 20) {
        return Err(SzError::Format("implausible slab count"));
    }
    let mut parts: Vec<&[u8]> = Vec::with_capacity(n_slabs);
    for _ in 0..n_slabs {
        let len = varint::read_u64(src, &mut pos)? as usize;
        if src.len() < pos + len {
            return Err(SzError::Format("slab payload truncated"));
        }
        parts.push(&src[pos..pos + len]);
        pos += len;
    }
    let fields: Vec<Result<Field<T>, SzError>> =
        par_map(&parts, threads, |bytes| szlike::decompress::<T>(bytes));
    let mut decoded = Vec::with_capacity(n_slabs);
    for f in fields {
        decoded.push(f?);
    }
    // Validate slab compatibility and reassemble along axis 0.
    let first = &decoded[0];
    let tail_dims = first.shape().dims()[1..].to_vec();
    let mut total_rows = 0usize;
    for f in &decoded {
        let dims = f.shape().dims();
        if dims[1..] != tail_dims[..] {
            return Err(SzError::Format("slab cross-sections disagree"));
        }
        total_rows += dims[0];
    }
    let mut data = Vec::with_capacity(total_rows * tail_dims.iter().product::<usize>().max(1));
    for f in decoded {
        data.extend_from_slice(f.as_slice());
    }
    let mut dims = vec![total_rows];
    dims.extend_from_slice(&tail_dims);
    Ok(Field::from_vec(Shape::from_dims(&dims), data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsnr_metrics::{Distortion, PointwiseError};

    fn big_field() -> Field<f32> {
        Field::from_fn_3d(24, 30, 32, |i, j, k| {
            ((i as f32 * 0.3).sin() + (j as f32 * 0.2).cos() + (k as f32 * 0.1).sin()) * 7.0
        })
    }

    #[test]
    fn slab_ranges_cover_exactly() {
        for (d0, want) in [(24usize, 4usize), (25, 4), (7, 10), (1, 3), (100, 1)] {
            let ranges = slab_ranges(Shape::D2(d0, 5), want);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, d0);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap between slabs");
            }
            assert!(ranges.len() <= want.max(1));
            assert!(ranges.iter().all(|(lo, hi)| hi > lo));
        }
    }

    #[test]
    fn slab_roundtrip_respects_global_bound() {
        let field = big_field();
        let vr = field.value_range();
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let bytes = compress_slabs(&field, &cfg, 4, 4).unwrap();
        let back: Field<f32> = decompress_slabs(&bytes, 4).unwrap();
        assert_eq!(back.shape(), field.shape());
        let pw = PointwiseError::between(&field, &back);
        assert!(pw.respects_abs_bound(1e-3 * vr), "max {}", pw.max_abs);
    }

    #[test]
    fn slab_count_one_matches_plain_sz_distortion() {
        let field = big_field();
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let slab = decompress_slabs::<f32>(&compress_slabs(&field, &cfg, 1, 1).unwrap(), 1)
            .unwrap();
        let plain: Field<f32> =
            szlike::decompress(&szlike::compress(&field, &cfg).unwrap()).unwrap();
        assert_eq!(slab.as_slice(), plain.as_slice());
    }

    #[test]
    fn fixed_psnr_slabs_hit_target() {
        let field = big_field();
        let bytes = compress_slabs_fixed_psnr(&field, 70.0, 6, 4).unwrap();
        let back: Field<f32> = decompress_slabs(&bytes, 4).unwrap();
        let psnr = Distortion::between(&field, &back).psnr();
        assert!(
            (psnr - 70.0).abs() < 5.0,
            "slab fixed-PSNR achieved {psnr}"
        );
    }

    #[test]
    fn parallel_and_serial_slab_streams_are_identical() {
        let field = big_field();
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3));
        let a = compress_slabs(&field, &cfg, 5, 1).unwrap();
        let b = compress_slabs(&field, &cfg, 5, 8).unwrap();
        assert_eq!(a, b, "thread count leaked into the stream");
    }

    #[test]
    fn more_slabs_cost_some_ratio() {
        let field = big_field();
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let one = compress_slabs(&field, &cfg, 1, 1).unwrap();
        let many = compress_slabs(&field, &cfg, 12, 4).unwrap();
        assert!(
            many.len() >= one.len(),
            "prediction restarts should not shrink the stream"
        );
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        let field = big_field();
        let cfg = SzConfig::new(ErrorBound::Abs(1e-2));
        let bytes = compress_slabs(&field, &cfg, 3, 2).unwrap();
        assert!(decompress_slabs::<f32>(&bytes[..bytes.len() / 2], 2).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decompress_slabs::<f32>(&bad, 2).is_err());
    }

    #[test]
    fn slabs_work_in_2d_and_1d() {
        let f2 = Field::from_fn_2d(50, 40, |i, j| (i * 40 + j) as f32 * 0.01);
        let f1 = Field::from_fn_linear(Shape::D1(300), |i| (i as f32 * 0.05).cos());
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3));
        for (field, slabs) in [(f2, 5usize), (f1, 3)] {
            let bytes = compress_slabs(&field, &cfg, slabs, 3).unwrap();
            let back: Field<f32> = decompress_slabs(&bytes, 3).unwrap();
            let pw = PointwiseError::between(&field, &back);
            assert!(pw.respects_abs_bound(1e-3));
        }
    }
}
