//! Snapshot-level global bit allocation: one byte budget, many fields.
//!
//! The paper's fixed-PSNR mode answers "give every field this quality";
//! the fixed-ratio driver answers "give this field that size". Production
//! archives ask a third question: *"this snapshot gets 500 MiB — spend it
//! well across all 79 fields."* Per-field targets cannot answer it —
//! fields differ wildly in entropy, so a shared ratio starves the hard
//! fields and a shared PSNR busts the budget — the budget has to be
//! *allocated*.
//!
//! The driver turns the paper's one-pass machinery into a global solver:
//!
//! 1. **Pilot** — every field runs the cheap [`szlike::RateModel`] pilot
//!    (one quantized walk, no entropy/LZ stages) in parallel and
//!    materializes its predicted bytes-vs-PSNR curve on one shared PSNR
//!    grid ([`AllocOptions::psnr_lo`] + `i`·[`AllocOptions::psnr_step`]).
//!    Degenerate fields (constant or all-non-finite: no rate curve
//!    exists) are **quarantined**: compressed outside the optimization at
//!    the grid-floor target, their bytes pre-charged against the budget.
//! 2. **Solve** — on the shared grid both objectives reduce to exact
//!    array arithmetic, so the solve is deterministic to the bit and
//!    independent of thread count:
//!    - [`AllocObjective::MinPsnr`] (default) — *maximize the minimum
//!      PSNR*: every field shares one grid target, and the solver takes
//!      the highest grid point whose summed predicted bytes fit
//!      ([`solve_min_psnr`] — water-filling where the water level *is*
//!      the shared PSNR).
//!    - [`AllocObjective::WeightedMse`] — *minimize `Σ wᵢ·MSEᵢ`*: a
//!      λ-bisection on the Lagrangian `wᵢ·MSEᵢ + λ·bytesᵢ` picks
//!      per-field grid points, then a greedy marginal-gain fill spends
//!      the leftover ([`solve_weighted_mse`]). `MSEᵢ(P) =
//!      vrᵢ²·10^(−P/10)` follows from the PSNR definition.
//! 3. **Compress** — every field compresses at its assigned target in
//!    one parallel pass ([`fpsnr_parallel::nested_split`] divides the
//!    worker budget between field-level and block-level parallelism).
//! 4. **Feedback** — if the measured total overshoots the budget (or
//!    under-uses it beyond [`AllocOptions::utilization_floor`]), each
//!    field's curve is rescaled by its measured/predicted gain (clamped
//!    to `[0.25, 4]`), the budget is re-solved **once**, and only fields
//!    whose assignment changed recompress. At most 2 real compression
//!    passes per field, structurally — there is no loop to bound.
//!
//! Every stage reports through `fpsnr-obs` (`alloc.pilot_passes`,
//! `alloc.compress_passes`, `alloc.second_passes`, `alloc.resolves`,
//! `alloc.quarantined`, spans `alloc.pilot/solve/compress`), which is how
//! the accuracy harness asserts the pass budget from the outside.

use crate::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_metrics::summary::{AllocFieldStat, FieldFailure, SnapshotSummary};
use fpsnr_parallel::{default_threads, nested_split, par_map};
use ndfield::Field;
use szlike::ratemodel::{RateCurve, RateModel};
use szlike::SzError;

/// A field of either scalar width — snapshots mix f32 and f64 fields, and
/// the allocator treats them uniformly (the rate model and compressor are
/// generic; only the raw-byte accounting differs).
#[derive(Debug, Clone)]
pub enum AnyField {
    /// Single-precision samples.
    F32(Field<f32>),
    /// Double-precision samples.
    F64(Field<f64>),
}

impl AnyField {
    /// Finite-sample value range (the Eq. 8 conversion factor).
    pub fn value_range(&self) -> f64 {
        match self {
            AnyField::F32(f) => f.value_range(),
            AnyField::F64(f) => f.value_range(),
        }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        match self {
            AnyField::F32(f) => f.len(),
            AnyField::F64(f) => f.len(),
        }
    }

    /// Whether the field holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed size in bytes.
    pub fn raw_bytes(&self) -> u64 {
        match self {
            AnyField::F32(f) => (f.len() * 4) as u64,
            AnyField::F64(f) => (f.len() * 8) as u64,
        }
    }

    fn pilot(&self, opts: &FixedPsnrOptions) -> Result<RateModel, SzError> {
        // The pilot ignores the bound; 60 dB is only a placeholder to
        // materialize the config.
        let cfg = opts.sz_config(60.0);
        match self {
            AnyField::F32(f) => RateModel::pilot(f, &cfg),
            AnyField::F64(f) => RateModel::pilot(f, &cfg),
        }
    }

    /// Verified fixed-PSNR compression; returns (container, achieved
    /// PSNR).
    fn compress(
        &self,
        target_psnr: f64,
        opts: &FixedPsnrOptions,
    ) -> Result<(Vec<u8>, f64), SzError> {
        match self {
            AnyField::F32(f) => compress_fixed_psnr(f, target_psnr, opts)
                .map(|r| (r.bytes, r.outcome.achieved_psnr)),
            AnyField::F64(f) => compress_fixed_psnr(f, target_psnr, opts)
                .map(|r| (r.bytes, r.outcome.achieved_psnr)),
        }
    }
}

/// One named member of a snapshot, with its weight under the
/// [`AllocObjective::WeightedMse`] objective (ignored by
/// [`AllocObjective::MinPsnr`]; default 1).
#[derive(Debug, Clone)]
pub struct SnapshotField {
    /// Field name (e.g. `"CLDHGH"`).
    pub name: String,
    /// Relative importance under the weighted objective; must be finite
    /// and positive.
    pub weight: f64,
    /// The samples.
    pub data: AnyField,
}

impl SnapshotField {
    /// Wrap an f32 field at weight 1.
    pub fn f32(name: impl Into<String>, field: Field<f32>) -> Self {
        SnapshotField {
            name: name.into(),
            weight: 1.0,
            data: AnyField::F32(field),
        }
    }

    /// Wrap an f64 field at weight 1.
    pub fn f64(name: impl Into<String>, field: Field<f64>) -> Self {
        SnapshotField {
            name: name.into(),
            weight: 1.0,
            data: AnyField::F64(field),
        }
    }

    /// Set the weighted-MSE weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// What the allocator optimizes subject to `Σ bytesᵢ ≤ budget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocObjective {
    /// Maximize the minimum per-field PSNR (the archival fairness
    /// objective: no field is left unusable). Default.
    MinPsnr,
    /// Minimize `Σ wᵢ·MSEᵢ` — spend bytes where they buy the most
    /// weighted distortion, allowing per-field quality to diverge.
    WeightedMse,
}

/// A snapshot-allocation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocOptions {
    /// Global byte budget for the whole snapshot.
    pub budget_bytes: u64,
    /// Objective (default [`AllocObjective::MinPsnr`]).
    pub objective: AllocObjective,
    /// Relative overshoot tolerance: a measured total within
    /// `budget · (1 + tolerance)` does not trigger the feedback pass.
    /// Default 0.02.
    pub tolerance: f64,
    /// Feedback also triggers when the measured total lands *under*
    /// `budget · utilization_floor` and the re-solve can move any field
    /// up the grid. Default 0.90.
    pub utilization_floor: f64,
    /// Total worker threads split between field- and block-level
    /// parallelism (0 = [`default_threads`]).
    pub threads: usize,
    /// Compressor knobs shared by every pass (its `threads` field is
    /// overwritten by the [`nested_split`] inner share).
    pub compress: FixedPsnrOptions,
    /// Lowest PSNR the allocator may assign (grid origin, dB).
    pub psnr_lo: f64,
    /// Grid spacing in dB — the quantum of the allocation.
    pub psnr_step: f64,
    /// Grid length; the ceiling is `psnr_lo + (psnr_points−1)·step`.
    pub psnr_points: usize,
}

impl AllocOptions {
    /// Defaults around a budget: max-min PSNR on a 20–140 dB grid in
    /// 0.25 dB steps, 2% overshoot tolerance, auto threads.
    pub fn new(budget_bytes: u64) -> Self {
        AllocOptions {
            budget_bytes,
            objective: AllocObjective::MinPsnr,
            tolerance: 0.02,
            utilization_floor: 0.90,
            threads: 0,
            compress: FixedPsnrOptions::default(),
            psnr_lo: 20.0,
            psnr_step: 0.25,
            psnr_points: 481,
        }
    }

    fn validate(&self) -> Result<(), SzError> {
        if self.budget_bytes == 0 {
            return Err(SzError::BadBound("snapshot budget must be positive".into()));
        }
        if !(self.tolerance.is_finite() && self.tolerance >= 0.0) {
            return Err(SzError::BadBound(format!(
                "budget tolerance must be finite and non-negative, got {}",
                self.tolerance
            )));
        }
        if !(self.utilization_floor.is_finite() && (0.0..=1.0).contains(&self.utilization_floor)) {
            return Err(SzError::BadBound(format!(
                "utilization floor must be in [0, 1], got {}",
                self.utilization_floor
            )));
        }
        if !(self.psnr_lo.is_finite() && self.psnr_lo > 0.0)
            || !(self.psnr_step.is_finite() && self.psnr_step > 0.0)
            || self.psnr_points == 0
        {
            return Err(SzError::BadBound(format!(
                "PSNR grid must be positive and non-empty (lo {}, step {}, points {})",
                self.psnr_lo, self.psnr_step, self.psnr_points
            )));
        }
        Ok(())
    }

    fn grid_psnr(&self, i: usize) -> f64 {
        self.psnr_lo + self.psnr_step * i as f64
    }
}

/// One field's allocation result: the accounting record plus the
/// container it produced (`None` when the field failed).
#[derive(Debug, Clone)]
pub struct AllocFieldRun {
    /// Assignment, measurements and pass accounting.
    pub stat: AllocFieldStat,
    /// The compressed container.
    pub bytes: Option<Vec<u8>>,
    /// Structured cause when the field failed (pilot or compression).
    pub failure: Option<FieldFailure>,
}

/// A complete snapshot-allocation run.
#[derive(Debug, Clone)]
pub struct SnapshotAllocation {
    /// Per-field results in input order.
    pub fields: Vec<AllocFieldRun>,
    /// Budget compliance, utilization, min-PSNR, pass totals.
    pub summary: SnapshotSummary,
    /// Feedback re-solves performed (0 or 1 by construction).
    pub resolves: u32,
}

/// Maximize-min-PSNR solve: the highest shared grid index whose summed
/// predicted bytes fit the budget (index 0 — the grid floor — when even
/// that does not fit: the budget is infeasible and the caller sees it in
/// the summary's utilization).
///
/// All curves must share one grid. Pure array arithmetic: deterministic,
/// monotone in the budget (a larger budget never yields a lower index).
pub fn solve_min_psnr(curves: &[RateCurve], budget: f64) -> usize {
    if curves.is_empty() {
        return 0;
    }
    let points = curves.iter().map(RateCurve::points).min().unwrap_or(0);
    let mut best = 0usize;
    for j in 0..points {
        let total: f64 = curves.iter().map(|c| c.bytes_at(j)).sum();
        if total <= budget {
            best = j;
        } else {
            // Per-curve bytes are monotone in the grid index, so the
            // first overflow ends the scan.
            break;
        }
    }
    best
}

/// Minimize `Σ wᵢ·MSEᵢ` subject to the budget: λ-bisection on the
/// per-field Lagrangian `wᵢ·MSEᵢ[j] + λ·bytesᵢ[j]` (each field picks its
/// own grid point), then a greedy marginal-gain fill of the leftover.
/// Returns one grid index per curve; all-zero when the budget is
/// infeasible even at the grid floor.
pub fn solve_weighted_mse(
    curves: &[RateCurve],
    weights: &[f64],
    psnr_lo: f64,
    psnr_step: f64,
    budget: f64,
) -> Vec<usize> {
    assert_eq!(curves.len(), weights.len(), "one weight per curve");
    let n = curves.len();
    if n == 0 {
        return Vec::new();
    }
    let points = curves.iter().map(RateCurve::points).min().unwrap_or(0);
    // wᵢ·MSEᵢ[j] = wᵢ·vrᵢ²·10^(−Pⱼ/10), strictly decreasing in j.
    let wmse: Vec<Vec<f64>> = curves
        .iter()
        .zip(weights)
        .map(|(c, &w)| {
            let vr2 = c.value_range() * c.value_range();
            (0..points)
                .map(|j| w * vr2 * 10f64.powf(-(psnr_lo + psnr_step * j as f64) / 10.0))
                .collect()
        })
        .collect();
    let pick = |lambda: f64| -> Vec<usize> {
        (0..n)
            .map(|f| {
                let mut best_j = 0usize;
                let mut best_score = f64::INFINITY;
                for j in 0..points {
                    let score = wmse[f][j] + lambda * curves[f].bytes_at(j);
                    if score < best_score {
                        best_score = score;
                        best_j = j;
                    }
                }
                best_j
            })
            .collect()
    };
    let total = |idx: &[usize]| -> f64 {
        idx.iter()
            .enumerate()
            .map(|(f, &j)| curves[f].bytes_at(j))
            .sum()
    };
    let mut idx = pick(0.0);
    if total(&idx) > budget {
        // Find a λ that fits by doubling, then bisect toward the
        // smallest fitting λ (the highest quality inside the budget).
        let mut hi = 1e-12f64;
        let mut fits = false;
        for _ in 0..120 {
            idx = pick(hi);
            if total(&idx) <= budget {
                fits = true;
                break;
            }
            hi *= 4.0;
        }
        if !fits {
            // Even pure byte-minimization overflows: infeasible budget.
            return vec![0; n];
        }
        let mut lo = 0.0f64;
        for _ in 0..96 {
            let mid = 0.5 * (lo + hi);
            let cand = pick(mid);
            if total(&cand) <= budget {
                hi = mid;
                idx = cand;
            } else {
                lo = mid;
            }
        }
    }
    // Greedy fill: repeatedly upgrade the field with the best weighted
    // distortion drop per byte that still fits. Bounded by n·points
    // upgrades total.
    let mut spent = total(&idx);
    loop {
        let mut best: Option<(f64, usize)> = None;
        for f in 0..n {
            let j = idx[f];
            if j + 1 >= points {
                continue;
            }
            let db = curves[f].bytes_at(j + 1) - curves[f].bytes_at(j);
            if spent + db > budget {
                continue;
            }
            let gain = (wmse[f][j] - wmse[f][j + 1]) / db.max(1e-9);
            if best.map_or(true, |(g, _)| gain > g) {
                best = Some((gain, f));
            }
        }
        match best {
            Some((_, f)) => {
                spent += curves[f].bytes_at(idx[f] + 1) - curves[f].bytes_at(idx[f]);
                idx[f] += 1;
            }
            None => break,
        }
    }
    idx
}

/// What phase 1 produced for one field.
enum Prep {
    /// Healthy: its predicted rate curve on the shared grid.
    Curve(RateCurve),
    /// Degenerate (no rate curve exists): already compressed at the grid
    /// floor, bytes pre-charged to the budget.
    Quarantined { bytes: Vec<u8>, achieved_psnr: f64 },
    /// Neither pilot nor quarantine compression survived.
    Failed(FieldFailure),
}

/// Allocate a global byte budget across a snapshot and compress every
/// field at its assigned target. See the module docs for the algorithm.
///
/// Per-field failures (degenerate inputs the quarantine path cannot even
/// store, config/shape mismatches) are reported in that field's
/// [`AllocFieldRun::failure`] instead of aborting the snapshot.
///
/// # Errors
/// [`SzError::BadBound`] for invalid options or non-positive field
/// weights. Per-field pipeline errors do *not* propagate.
pub fn allocate_snapshot(
    fields: &[SnapshotField],
    opts: &AllocOptions,
) -> Result<SnapshotAllocation, SzError> {
    opts.validate()?;
    for f in fields {
        if !(f.weight.is_finite() && f.weight > 0.0) {
            return Err(SzError::BadBound(format!(
                "field {:?} has non-positive weight {}",
                f.name, f.weight
            )));
        }
    }
    let _total_span = fpsnr_obs::span("alloc.total");
    let threads = if opts.threads == 0 {
        default_threads()
    } else {
        opts.threads
    };
    let (outer, inner) = nested_split(threads, fields.len());
    let copts = FixedPsnrOptions {
        threads: inner,
        ..opts.compress
    };

    // ---- Phase 1: parallel pilots; degenerate fields quarantine now.
    let pilot_span = fpsnr_obs::span("alloc.pilot");
    let preps: Vec<Prep> = par_map(fields, outer, |f| {
        let vr = f.data.value_range();
        if !(vr.is_finite() && vr > 0.0) {
            // No rate curve exists; store the field outside the
            // optimization. The bound is irrelevant for these inputs
            // (constant/non-finite data short-circuits in the
            // compressor), so the grid floor is as good as any.
            return match f.data.compress(opts.grid_psnr(0), &copts) {
                Ok((bytes, achieved_psnr)) => {
                    if fpsnr_obs::is_enabled() {
                        fpsnr_obs::add("alloc.quarantined", 1);
                        fpsnr_obs::add("alloc.compress_passes", 1);
                    }
                    Prep::Quarantined {
                        bytes,
                        achieved_psnr,
                    }
                }
                Err(e) => Prep::Failed(FieldFailure {
                    stage: "compress",
                    detail: e.to_string(),
                }),
            };
        }
        match f.data.pilot(&copts) {
            Ok(model) => {
                if fpsnr_obs::is_enabled() {
                    fpsnr_obs::add("alloc.pilot_passes", 1);
                }
                Prep::Curve(model.curve(opts.psnr_lo, opts.psnr_step, opts.psnr_points, 1.0))
            }
            Err(e) => Prep::Failed(FieldFailure {
                stage: "pilot",
                detail: e.to_string(),
            }),
        }
    });
    drop(pilot_span);

    let quarantine_bytes: u64 = preps
        .iter()
        .map(|p| match p {
            Prep::Quarantined { bytes, .. } => bytes.len() as u64,
            _ => 0,
        })
        .sum();
    // The optimizable sub-problem: curve holders, with the budget net of
    // what the quarantined fields already spent.
    let opt_fields: Vec<usize> = preps
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, Prep::Curve(_)))
        .map(|(i, _)| i)
        .collect();
    let curves: Vec<&RateCurve> = opt_fields
        .iter()
        .map(|&i| match &preps[i] {
            Prep::Curve(c) => c,
            _ => unreachable!("opt_fields holds only curves"),
        })
        .collect();
    let weights: Vec<f64> = opt_fields.iter().map(|&i| fields[i].weight).collect();
    let solve_budget = (opts.budget_bytes.saturating_sub(quarantine_bytes)) as f64;

    let solve = |cs: &[RateCurve]| -> Vec<usize> {
        let _span = fpsnr_obs::span("alloc.solve");
        match opts.objective {
            AllocObjective::MinPsnr => vec![solve_min_psnr(cs, solve_budget); cs.len()],
            AllocObjective::WeightedMse => {
                solve_weighted_mse(cs, &weights, opts.psnr_lo, opts.psnr_step, solve_budget)
            }
        }
    };
    let owned: Vec<RateCurve> = curves.iter().map(|&c| c.clone()).collect();
    let assign = solve(&owned);

    // ---- Phase 2: one parallel compression pass at the assignments.
    struct Pass {
        bytes: Option<Vec<u8>>,
        achieved_psnr: f64,
        failure: Option<FieldFailure>,
        passes: u32,
    }
    let compress_at = |work: &[(usize, usize)]| -> Vec<Pass> {
        // work: (position in opt_fields, grid index)
        let _span = fpsnr_obs::span("alloc.compress");
        let (outer, inner) = nested_split(threads, work.len());
        let copts = FixedPsnrOptions {
            threads: inner,
            ..opts.compress
        };
        par_map(work, outer, |&(k, j)| {
            let f = &fields[opt_fields[k]];
            match f.data.compress(opts.grid_psnr(j), &copts) {
                Ok((bytes, achieved_psnr)) => {
                    if fpsnr_obs::is_enabled() {
                        fpsnr_obs::add("alloc.compress_passes", 1);
                    }
                    Pass {
                        bytes: Some(bytes),
                        achieved_psnr,
                        failure: None,
                        passes: 1,
                    }
                }
                Err(e) => Pass {
                    bytes: None,
                    achieved_psnr: f64::NAN,
                    failure: Some(FieldFailure {
                        stage: "compress",
                        detail: e.to_string(),
                    }),
                    passes: 1,
                },
            }
        })
    };
    let work: Vec<(usize, usize)> = assign.iter().copied().enumerate().collect();
    let mut passes = compress_at(&work);
    let mut assign = assign;

    // ---- Phase 3: bounded feedback. One re-solve on gain-corrected
    // curves; recompress only reassigned fields. Never loops.
    let mut resolves = 0u32;
    let measured_total = |ps: &[Pass]| -> u64 {
        quarantine_bytes
            + ps.iter()
                .map(|p| p.bytes.as_ref().map_or(0, |b| b.len() as u64))
                .sum::<u64>()
    };
    let total = measured_total(&passes);
    let over = total as f64 > opts.budget_bytes as f64 * (1.0 + opts.tolerance);
    let under = (total as f64) < opts.budget_bytes as f64 * opts.utilization_floor;
    if (over || under) && !owned.is_empty() {
        let corrected: Vec<RateCurve> = owned
            .iter()
            .enumerate()
            .map(|(k, c)| {
                let predicted = c.bytes_at(assign[k]);
                let gain = match &passes[k].bytes {
                    Some(b) if predicted > 0.0 => {
                        (b.len() as f64 / predicted).clamp(0.25, 4.0)
                    }
                    _ => 1.0,
                };
                c.scaled(gain)
            })
            .collect();
        let reassign = solve(&corrected);
        resolves = 1;
        if fpsnr_obs::is_enabled() {
            fpsnr_obs::add("alloc.resolves", 1);
        }
        let rework: Vec<(usize, usize)> = reassign
            .iter()
            .copied()
            .enumerate()
            .filter(|&(k, j)| j != assign[k] && passes[k].failure.is_none())
            .collect();
        if !rework.is_empty() {
            if fpsnr_obs::is_enabled() {
                fpsnr_obs::add("alloc.second_passes", rework.len() as u64);
            }
            let second = compress_at(&rework);
            for (slot, mut p) in rework.into_iter().zip(second) {
                let (k, j) = slot;
                p.passes = passes[k].passes + 1;
                passes[k] = p;
                assign[k] = j;
            }
        }
    }

    // ---- Phase 4: assemble per-field records in input order.
    let mut pass_iter = passes.into_iter();
    let mut k = 0usize; // position in opt_fields / assign
    let runs: Vec<AllocFieldRun> = preps
        .into_iter()
        .enumerate()
        .map(|(i, prep)| {
            let f = &fields[i];
            let raw = f.data.raw_bytes();
            match prep {
                Prep::Curve(curve) => {
                    let p = pass_iter.next().expect("one pass per curve");
                    let j = assign[k];
                    k += 1;
                    AllocFieldRun {
                        stat: AllocFieldStat {
                            field: f.name.clone(),
                            assigned_psnr: opts.grid_psnr(j),
                            achieved_psnr: p.achieved_psnr,
                            predicted_bytes: curve.bytes_at(j),
                            achieved_bytes: p.bytes.as_ref().map_or(0, |b| b.len() as u64),
                            raw_bytes: raw,
                            passes: p.passes,
                            quarantined: false,
                        },
                        bytes: p.bytes,
                        failure: p.failure,
                    }
                }
                Prep::Quarantined {
                    bytes,
                    achieved_psnr,
                } => AllocFieldRun {
                    stat: AllocFieldStat {
                        field: f.name.clone(),
                        assigned_psnr: f64::NAN,
                        achieved_psnr,
                        predicted_bytes: f64::NAN,
                        achieved_bytes: bytes.len() as u64,
                        raw_bytes: raw,
                        passes: 1,
                        quarantined: true,
                    },
                    bytes: Some(bytes),
                    failure: None,
                },
                Prep::Failed(failure) => AllocFieldRun {
                    stat: AllocFieldStat {
                        field: f.name.clone(),
                        assigned_psnr: f64::NAN,
                        achieved_psnr: f64::NAN,
                        predicted_bytes: f64::NAN,
                        achieved_bytes: 0,
                        raw_bytes: raw,
                        passes: 0,
                        quarantined: true,
                    },
                    bytes: None,
                    failure: Some(failure),
                },
            }
        })
        .collect();
    let stats: Vec<AllocFieldStat> = runs.iter().map(|r| r.stat.clone()).collect();
    let summary = SnapshotSummary::aggregate(opts.budget_bytes, &stats);
    Ok(SnapshotAllocation {
        fields: runs,
        summary,
        resolves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    fn textured(k: usize) -> Field<f32> {
        Field::from_fn_2d(40, 52, move |i, j| {
            let x = i as f32 * 0.11 + k as f32 * 0.7;
            let y = j as f32 * 0.13;
            (10.0 + k as f32) * (x.sin() + (y * 0.9).cos()) + ((x * 3.1).sin() * (y * 2.3).cos())
        })
    }

    fn snapshot(n: usize) -> Vec<SnapshotField> {
        (0..n)
            .map(|k| SnapshotField::f32(format!("field_{k}"), textured(k)))
            .collect()
    }

    fn curves_for(fields: &[SnapshotField], opts: &AllocOptions) -> Vec<RateCurve> {
        fields
            .iter()
            .map(|f| {
                f.data
                    .pilot(&opts.compress)
                    .unwrap()
                    .curve(opts.psnr_lo, opts.psnr_step, opts.psnr_points, 1.0)
            })
            .collect()
    }

    #[test]
    fn min_psnr_solver_is_budget_monotone_and_feasible() {
        let opts = AllocOptions::new(1);
        let curves = curves_for(&snapshot(6), &opts);
        let mut prev = 0usize;
        let mut grew = false;
        for budget in (1..=12).map(|m| m as f64 * 4096.0) {
            let j = solve_min_psnr(&curves, budget);
            assert!(j >= prev, "budget {budget}: index {j} < previous {prev}");
            let total: f64 = curves.iter().map(|c| c.bytes_at(j)).sum();
            assert!(j == 0 || total <= budget, "budget {budget} overspent: {total}");
            grew |= j > prev;
            prev = j;
        }
        assert!(grew, "larger budgets never bought higher PSNR");
    }

    #[test]
    fn weighted_solver_respects_budget_and_favors_weight() {
        let opts = AllocOptions::new(1);
        let fields = snapshot(4);
        let curves = curves_for(&fields, &opts);
        let budget = 3.0 * curves.iter().map(|c| c.bytes_at(0)).sum::<f64>();
        let even = solve_weighted_mse(&curves, &[1.0; 4], opts.psnr_lo, opts.psnr_step, budget);
        let total: f64 = even
            .iter()
            .enumerate()
            .map(|(f, &j)| curves[f].bytes_at(j))
            .sum();
        assert!(total <= budget, "even weights overspent: {total} > {budget}");
        // Pushing all the weight onto field 0 must not lower its quality.
        let skew =
            solve_weighted_mse(&curves, &[1e4, 1.0, 1.0, 1.0], opts.psnr_lo, opts.psnr_step, budget);
        assert!(
            skew[0] >= even[0],
            "upweighting field 0 lowered it: {} -> {}",
            even[0],
            skew[0]
        );
    }

    #[test]
    fn allocation_fits_budget_and_preserves_order() {
        let fields = snapshot(6);
        let raw: u64 = fields.iter().map(|f| f.data.raw_bytes()).sum();
        let opts = AllocOptions {
            threads: 2,
            ..AllocOptions::new(raw / 12)
        };
        let run = allocate_snapshot(&fields, &opts).unwrap();
        assert_eq!(run.fields.len(), 6);
        for (k, r) in run.fields.iter().enumerate() {
            assert_eq!(r.stat.field, format!("field_{k}"));
            assert!(r.failure.is_none(), "field {k}: {:?}", r.failure);
            assert!(r.stat.passes <= 2);
        }
        assert!(run.summary.within_budget(opts.tolerance));
        assert!(run.summary.max_passes <= 2);
        // The shared min-PSNR target: every allocated field gets one level.
        let assigned: Vec<f64> = run.fields.iter().map(|r| r.stat.assigned_psnr).collect();
        assert!(assigned.iter().all(|&a| (a - assigned[0]).abs() < 1e-9));
    }

    #[test]
    fn degenerate_fields_are_quarantined_not_fatal() {
        let mut fields = snapshot(3);
        fields.insert(
            1,
            SnapshotField::f32("flat", Field::from_vec(Shape::D2(16, 16), vec![3.0; 256])),
        );
        fields.push(SnapshotField::f32(
            "nans",
            Field::from_vec(Shape::D2(16, 16), vec![f32::NAN; 256]),
        ));
        let raw: u64 = fields.iter().map(|f| f.data.raw_bytes()).sum();
        let run = allocate_snapshot(&fields, &AllocOptions::new(raw / 10)).unwrap();
        assert_eq!(run.summary.n_quarantined, 2);
        let flat = &run.fields[1];
        assert!(flat.stat.quarantined);
        assert!(flat.stat.assigned_psnr.is_nan());
        assert!(flat.bytes.is_some(), "quarantined fields still get stored");
        assert!(flat.stat.achieved_psnr.is_infinite());
        for r in &run.fields {
            assert!(r.failure.is_none());
        }
        assert!(run.summary.min_assigned_psnr.is_finite());
    }

    #[test]
    fn empty_snapshot_is_fine() {
        let run = allocate_snapshot(&[], &AllocOptions::new(1024)).unwrap();
        assert!(run.fields.is_empty());
        assert_eq!(run.summary.total_bytes, 0);
        assert_eq!(run.resolves, 0);
    }

    #[test]
    fn bad_options_rejected() {
        let fields = snapshot(1);
        assert!(allocate_snapshot(&fields, &AllocOptions::new(0)).is_err());
        let mut bad = AllocOptions::new(1 << 20);
        bad.psnr_points = 0;
        assert!(allocate_snapshot(&fields, &bad).is_err());
        let heavy = vec![snapshot(1).remove(0).with_weight(f64::NAN)];
        assert!(allocate_snapshot(&heavy, &AllocOptions::new(1 << 20)).is_err());
    }

    #[test]
    fn weighted_objective_diverges_per_field_targets() {
        let fields: Vec<SnapshotField> = snapshot(4)
            .into_iter()
            .enumerate()
            .map(|(k, f)| f.with_weight(if k == 0 { 1e6 } else { 1.0 }))
            .collect();
        let raw: u64 = fields.iter().map(|f| f.data.raw_bytes()).sum();
        let opts = AllocOptions {
            objective: AllocObjective::WeightedMse,
            ..AllocOptions::new(raw / 16)
        };
        let run = allocate_snapshot(&fields, &opts).unwrap();
        assert!(run.summary.within_budget(opts.tolerance));
        let a: Vec<f64> = run.fields.iter().map(|r| r.stat.assigned_psnr).collect();
        assert!(
            a[0] >= a[1] && a[0] >= a[2] && a[0] >= a[3],
            "heaviest field got the lowest quality: {a:?}"
        );
    }
}
