//! Quantizer distortion estimation (paper §III–IV, Eq. 2–7).
//!
//! The estimators here answer: *given only the quantizer geometry (and, for
//! non-uniform grids, the error pdf), what MSE/PSNR will the decompressed
//! data show?* Theorems 1 and 2 license transferring that estimate from the
//! quantized domain (prediction errors / transform coefficients) to the
//! reconstructed data.

use fpsnr_metrics::Histogram;

/// Eq. 3 (general bins): expected MSE of midpoint quantization given bins
/// of width `δᵢ` whose midpoints see probability **density** `P(mᵢ)`.
/// Each bin contributes `P(mᵢ)·δᵢ³/12` (the paper folds its symmetric ×2
/// and one-sided sum into the same expression; this version takes *all*
/// bins so asymmetric layouts work too).
pub fn mse_general_bins(bins: &[(f64, f64)]) -> f64 {
    bins.iter()
        .map(|&(width, density)| density * width * width * width / 12.0)
        .sum()
}

/// Eq. 3 evaluated against an *empirical* pdf: estimate the MSE of a
/// uniform quantizer with bin width `delta` applied to samples whose
/// distribution is captured by `hist`. Histogram bins are treated as the
/// quantization bins' density probes.
pub fn mse_from_histogram(hist: &Histogram, delta: f64) -> f64 {
    // Re-bin the empirical density onto the quantizer's grid width: the
    // per-bin mass is density × delta, each mass quantizes with variance
    // δ²/12. Using the histogram's own bins as probes is exact when the
    // histogram is at least as fine as the quantizer.
    let mut mse = 0.0;
    for i in 0..hist.bins() {
        let mass = hist.fraction(i);
        mse += mass * delta * delta / 12.0;
    }
    mse
}

/// Uniform-quantizer MSE, the distribution-free limit behind Eq. 6:
/// `MSE = δ²/12`.
pub fn mse_uniform(delta: f64) -> f64 {
    delta * delta / 12.0
}

/// Eq. 6: predicted PSNR of uniform quantization with bin width `delta` on
/// data with value range `vr`: `PSNR = 20·log₁₀(vr/δ) + 10·log₁₀ 12`.
pub fn psnr_uniform_estimate(vr: f64, delta: f64) -> f64 {
    20.0 * (vr / delta).log10() + 10.0 * 12.0f64.log10()
}

/// Eq. 7: predicted PSNR of SZ with absolute bound `eb_abs` (SZ's bin width
/// is `δ = 2·eb_abs`): `PSNR = 20·log₁₀(vr/eb) + 10·log₁₀ 3`.
pub fn psnr_sz_estimate(vr: f64, eb_abs: f64) -> f64 {
    20.0 * (vr / eb_abs).log10() + 10.0 * 3.0f64.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mse_is_delta_sq_over_12() {
        assert!((mse_uniform(0.2) - 0.04 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn eq6_and_eq7_are_consistent() {
        // Eq. 7 is Eq. 6 with δ = 2·eb: the two must agree identically.
        let (vr, eb) = (37.5, 1e-3);
        let via6 = psnr_uniform_estimate(vr, 2.0 * eb);
        let via7 = psnr_sz_estimate(vr, eb);
        assert!((via6 - via7).abs() < 1e-12);
    }

    #[test]
    fn eq7_reference_value() {
        // vr/eb = 1e4 ⇒ PSNR = 80 + 10·log10(3) ≈ 84.771 dB.
        let p = psnr_sz_estimate(1.0, 1e-4);
        assert!((p - (80.0 + 10.0 * 3.0f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn general_bins_reduce_to_uniform() {
        // Uniform bins with total probability 1: Σ P(mᵢ)·δ = 1, all δ equal
        // ⇒ MSE = δ²/12 exactly.
        let delta = 0.5;
        let n = 40;
        let density = 1.0 / (n as f64 * delta);
        let bins: Vec<(f64, f64)> = (0..n).map(|_| (delta, density)).collect();
        assert!((mse_general_bins(&bins) - mse_uniform(delta)).abs() < 1e-12);
    }

    #[test]
    fn general_bins_match_numeric_integration_for_gaussian() {
        // Quantize a standard Gaussian with non-uniform bins (finer near
        // zero). Eq. 3 vs direct numeric integration of (x − mᵢ)²·φ(x).
        let phi = |x: f64| (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        // Bin edges: dense near 0, coarser outward, covering [-4, 4].
        let mut edges = vec![-4.0, -2.5, -1.5, -0.8, -0.3, 0.0, 0.3, 0.8, 1.5, 2.5, 4.0];
        edges.dedup();
        let mut eq3 = 0.0;
        let mut exact = 0.0;
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let width = hi - lo;
            let mid = (lo + hi) / 2.0;
            eq3 += phi(mid) * width * width * width / 12.0;
            // numeric ∫ (x-mid)² φ(x) dx over the bin
            let steps = 2000;
            let h = width / steps as f64;
            let mut acc = 0.0;
            for s in 0..steps {
                let x = lo + (s as f64 + 0.5) * h;
                acc += (x - mid) * (x - mid) * phi(x) * h;
            }
            exact += acc;
        }
        let rel = (eq3 - exact).abs() / exact;
        assert!(rel < 0.15, "Eq.3 off by {rel} (eq3 {eq3}, exact {exact})");
    }

    #[test]
    fn histogram_estimate_matches_uniform_when_mass_sums_to_one() {
        let samples: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.001).sin()).collect();
        let hist = Histogram::auto(&samples, 256);
        let delta = 0.01;
        let est = mse_from_histogram(&hist, delta);
        assert!((est - mse_uniform(delta)).abs() < 1e-12);
    }

    #[test]
    fn psnr_increases_as_delta_shrinks() {
        let vr = 10.0;
        let p1 = psnr_uniform_estimate(vr, 0.1);
        let p2 = psnr_uniform_estimate(vr, 0.01);
        assert!((p2 - p1 - 20.0).abs() < 1e-9, "10x finer ⇒ +20 dB");
    }
}
