//! Parallel multi-field fixed-PSNR runs.
//!
//! The paper's motivating pain is snapshot-scale: CESM writes 100+ fields
//! per dump and each would previously need its own trial-and-error bound
//! tuning. With Eq. 8 the per-field work is a single compression, and
//! fields are independent — a textbook parallel map, run here on the
//! std::thread-backed runtime in `fpsnr-parallel`.
//!
//! [`run_batch_full`] is the primary entry point: it keeps every field's
//! compressed container and byte count (what the snapshot-level allocator
//! in [`crate::alloc`] and archival writers need), and reports per-field
//! failures with their structured cause instead of aborting the batch.
//! [`run_batch`] is the outcome-only view the evaluation harnesses use.

use crate::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_metrics::summary::{DatasetSummary, FieldFailure, FieldOutcome};
use fpsnr_parallel::par_map;
use ndfield::{Field, Scalar};

/// One field's complete batch result: the measured outcome plus the
/// container it produced (`None` when the field failed).
#[derive(Debug, Clone)]
pub struct FieldRun {
    /// Measured outcome; `outcome.failure` carries the structured cause
    /// when the field failed (its `achieved_psnr` is NaN then).
    pub outcome: FieldOutcome,
    /// The compressed container, kept so batch callers can write or
    /// further account for it without recompressing.
    pub bytes: Option<Vec<u8>>,
}

impl FieldRun {
    /// Compressed size in bytes (0 for failed fields).
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.as_ref().map_or(0, Vec::len)
    }
}

/// Run verified fixed-PSNR compression over every named field, in
/// parallel, returning per-field containers and outcomes in input order.
///
/// Fields whose compression fails (degenerate bounds, non-finite ranges)
/// are reported with `achieved_psnr = NaN` and a [`FieldFailure`] naming
/// the stage and cause, rather than aborting the batch — one bad field
/// must not sink a 79-field snapshot.
pub fn run_batch_full<T: Scalar>(
    fields: &[(String, Field<T>)],
    target_psnr: f64,
    opts: &FixedPsnrOptions,
    threads: usize,
) -> Vec<FieldRun> {
    par_map(fields, threads, |(name, field)| {
        let _field_span = fpsnr_obs::span("batch.field");
        match compress_fixed_psnr(field, target_psnr, opts) {
            Ok(run) => FieldRun {
                outcome: FieldOutcome {
                    field: name.clone(),
                    ..run.outcome
                },
                bytes: Some(run.bytes),
            },
            Err(e) => FieldRun {
                outcome: FieldOutcome {
                    field: name.clone(),
                    target_psnr,
                    achieved_psnr: f64::NAN,
                    ratio: 0.0,
                    failure: Some(FieldFailure {
                        stage: "compress",
                        detail: e.to_string(),
                    }),
                },
                bytes: None,
            },
        }
    })
}

/// [`run_batch_full`] stripped to outcomes (the evaluation view).
pub fn run_batch<T: Scalar>(
    fields: &[(String, Field<T>)],
    target_psnr: f64,
    opts: &FixedPsnrOptions,
    threads: usize,
) -> Vec<FieldOutcome> {
    run_batch_full(fields, target_psnr, opts, threads)
        .into_iter()
        .map(|r| r.outcome)
        .collect()
}

/// [`run_batch`] plus aggregation into one Table II cell.
pub fn run_batch_summary<T: Scalar>(
    dataset: &str,
    fields: &[(String, Field<T>)],
    target_psnr: f64,
    opts: &FixedPsnrOptions,
    threads: usize,
) -> (Vec<FieldOutcome>, DatasetSummary) {
    let outcomes = run_batch(fields, target_psnr, opts, threads);
    let summary = DatasetSummary::aggregate(dataset, target_psnr, &outcomes);
    (outcomes, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    fn snapshot(n: usize) -> Vec<(String, Field<f32>)> {
        (0..n)
            .map(|k| {
                let field = Field::from_fn_2d(48, 48, move |i, j| {
                    ((i as f32 * 0.1 + k as f32).sin() + (j as f32 * 0.08).cos()) * (k + 1) as f32
                });
                (format!("field_{k}"), field)
            })
            .collect()
    }

    /// Batch options that pin a 2-axis chunk grid: fine for the 2-D
    /// snapshot fields, fatal for any lower-rank straggler.
    fn chunked_opts() -> FixedPsnrOptions {
        FixedPsnrOptions {
            chunk_dims: [16, 16, 0],
            ..Default::default()
        }
    }

    /// A field the shared batch config cannot compress: rank 1, so the
    /// snapshot-wide `chunk_dims` name an axis it does not have. (The SZ
    /// pipeline is total over NaN/Inf *values* — degenerate samples ride
    /// the escape path — so shape/config mismatch is the realistic
    /// per-field failure in a mixed snapshot.)
    fn poison() -> Field<f32> {
        let v: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).sin()).collect();
        Field::from_vec(Shape::D1(256), v)
    }

    #[test]
    fn batch_outcomes_in_input_order() {
        let fields = snapshot(8);
        let outs = run_batch(&fields, 60.0, &FixedPsnrOptions::default(), 4);
        assert_eq!(outs.len(), 8);
        for (k, o) in outs.iter().enumerate() {
            assert_eq!(o.field, format!("field_{k}"));
            assert!(o.achieved_psnr.is_finite());
            assert!(o.failure.is_none());
        }
    }

    #[test]
    fn full_batch_returns_containers_and_byte_counts() {
        let fields = snapshot(5);
        let runs = run_batch_full(&fields, 70.0, &FixedPsnrOptions::default(), 2);
        assert_eq!(runs.len(), 5);
        for run in &runs {
            let bytes = run.bytes.as_ref().expect("healthy field has a container");
            assert_eq!(run.compressed_bytes(), bytes.len());
            assert!(!bytes.is_empty());
            // The container really is the field: it decompresses to the
            // input shape.
            let back: Field<f32> = szlike::decompress(bytes).unwrap();
            assert_eq!(back.shape(), Shape::D2(48, 48));
        }
    }

    #[test]
    fn mixed_failure_snapshot_reports_cause_and_preserves_order() {
        let mut fields = snapshot(4);
        fields.insert(2, ("poison".to_string(), poison()));
        let runs = run_batch_full(&fields, 60.0, &chunked_opts(), 3);
        assert_eq!(runs.len(), 5);
        let expected = ["field_0", "field_1", "poison", "field_2", "field_3"];
        for (run, want) in runs.iter().zip(expected) {
            assert_eq!(run.outcome.field, want);
        }
        let bad = &runs[2];
        assert!(bad.bytes.is_none());
        assert_eq!(bad.compressed_bytes(), 0);
        assert!(bad.outcome.achieved_psnr.is_nan());
        assert!(!bad.outcome.meets_target());
        let failure = bad.outcome.failure.as_ref().expect("failure cause kept");
        assert_eq!(failure.stage, "compress");
        assert!(!failure.detail.is_empty());
        // The healthy neighbours are untouched by the poison field.
        for i in [0, 1, 3, 4] {
            assert!(runs[i].outcome.failure.is_none(), "field {i} poisoned");
            assert!(runs[i].outcome.achieved_psnr.is_finite());
        }
    }

    #[test]
    fn failure_survives_into_summary_counts() {
        let mut fields = snapshot(3);
        fields.push(("poison".to_string(), poison()));
        let (outs, summary) = run_batch_summary("TEST", &fields, 60.0, &chunked_opts(), 2);
        assert_eq!(summary.n_fields, 4);
        // The failed field drags the meet rate down but not the average
        // (NaN outcomes are excluded from AVG/STDEV).
        assert!(summary.meet_rate <= 0.75);
        assert!(summary.avg.is_finite());
        assert_eq!(outs.iter().filter(|o| o.failure.is_some()).count(), 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let fields = snapshot(6);
        let opts = FixedPsnrOptions::default();
        let serial = run_batch_full(&fields, 70.0, &opts, 1);
        let parallel = run_batch_full(&fields, 70.0, &opts, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.outcome.field, b.outcome.field);
            assert_eq!(a.outcome.achieved_psnr, b.outcome.achieved_psnr);
            assert_eq!(a.outcome.ratio, b.outcome.ratio);
            assert_eq!(a.bytes, b.bytes, "container bytes depend on threads");
        }
    }

    #[test]
    fn summary_reflects_batch() {
        let fields = snapshot(5);
        let (outs, summary) =
            run_batch_summary("TEST", &fields, 80.0, &FixedPsnrOptions::default(), 2);
        assert_eq!(summary.n_fields, 5);
        assert_eq!(summary.dataset, "TEST");
        let mean: f64 =
            outs.iter().map(|o| o.achieved_psnr).sum::<f64>() / outs.len() as f64;
        assert!((summary.avg - mean).abs() < 1e-9);
        // Smooth synthetic fields at 80 dB land near target.
        assert!((summary.avg - 80.0).abs() < 5.0, "avg {}", summary.avg);
    }

    #[test]
    fn empty_batch_is_empty() {
        let fields: Vec<(String, Field<f32>)> = vec![];
        assert!(run_batch(&fields, 60.0, &FixedPsnrOptions::default(), 4).is_empty());
        assert!(run_batch_full(&fields, 60.0, &FixedPsnrOptions::default(), 4).is_empty());
    }
}
