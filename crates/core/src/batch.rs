//! Parallel multi-field fixed-PSNR runs.
//!
//! The paper's motivating pain is snapshot-scale: CESM writes 100+ fields
//! per dump and each would previously need its own trial-and-error bound
//! tuning. With Eq. 8 the per-field work is a single compression, and
//! fields are independent — a textbook parallel map, run here on the
//! std::thread-backed runtime in `fpsnr-parallel`.

use crate::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_metrics::summary::{DatasetSummary, FieldOutcome};
use fpsnr_parallel::par_map;
use ndfield::{Field, Scalar};

/// Run verified fixed-PSNR compression over every named field, in parallel,
/// returning per-field outcomes in input order.
///
/// Fields whose compression fails (degenerate bounds) are reported with
/// `achieved_psnr = NaN` rather than aborting the batch — one bad field
/// must not sink a 79-field snapshot.
pub fn run_batch<T: Scalar>(
    fields: &[(String, Field<T>)],
    target_psnr: f64,
    opts: &FixedPsnrOptions,
    threads: usize,
) -> Vec<FieldOutcome> {
    par_map(fields, threads, |(name, field)| {
        let _field_span = fpsnr_obs::span("batch.field");
        match compress_fixed_psnr(field, target_psnr, opts) {
            Ok(run) => FieldOutcome {
                field: name.clone(),
                ..run.outcome
            },
            Err(_) => FieldOutcome {
                field: name.clone(),
                target_psnr,
                achieved_psnr: f64::NAN,
                ratio: 0.0,
            },
        }
    })
}

/// [`run_batch`] plus aggregation into one Table II cell.
pub fn run_batch_summary<T: Scalar>(
    dataset: &str,
    fields: &[(String, Field<T>)],
    target_psnr: f64,
    opts: &FixedPsnrOptions,
    threads: usize,
) -> (Vec<FieldOutcome>, DatasetSummary) {
    let outcomes = run_batch(fields, target_psnr, opts, threads);
    let summary = DatasetSummary::aggregate(dataset, target_psnr, &outcomes);
    (outcomes, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(n: usize) -> Vec<(String, Field<f32>)> {
        (0..n)
            .map(|k| {
                let field = Field::from_fn_2d(48, 48, move |i, j| {
                    ((i as f32 * 0.1 + k as f32).sin() + (j as f32 * 0.08).cos()) * (k + 1) as f32
                });
                (format!("field_{k}"), field)
            })
            .collect()
    }

    #[test]
    fn batch_outcomes_in_input_order() {
        let fields = snapshot(8);
        let outs = run_batch(&fields, 60.0, &FixedPsnrOptions::default(), 4);
        assert_eq!(outs.len(), 8);
        for (k, o) in outs.iter().enumerate() {
            assert_eq!(o.field, format!("field_{k}"));
            assert!(o.achieved_psnr.is_finite());
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let fields = snapshot(6);
        let opts = FixedPsnrOptions::default();
        let serial = run_batch(&fields, 70.0, &opts, 1);
        let parallel = run_batch(&fields, 70.0, &opts, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.field, b.field);
            assert_eq!(a.achieved_psnr, b.achieved_psnr);
            assert_eq!(a.ratio, b.ratio);
        }
    }

    #[test]
    fn summary_reflects_batch() {
        let fields = snapshot(5);
        let (outs, summary) =
            run_batch_summary("TEST", &fields, 80.0, &FixedPsnrOptions::default(), 2);
        assert_eq!(summary.n_fields, 5);
        assert_eq!(summary.dataset, "TEST");
        let mean: f64 =
            outs.iter().map(|o| o.achieved_psnr).sum::<f64>() / outs.len() as f64;
        assert!((summary.avg - mean).abs() < 1e-9);
        // Smooth synthetic fields at 80 dB land near target.
        assert!((summary.avg - 80.0).abs() < 5.0, "avg {}", summary.avg);
    }

    #[test]
    fn empty_batch_is_empty() {
        let fields: Vec<(String, Field<f32>)> = vec![];
        assert!(run_batch(&fields, 60.0, &FixedPsnrOptions::default(), 4).is_empty());
    }
}
