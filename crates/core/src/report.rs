//! Report rendering for the experiment harness (Table II rows, Fig. 2
//! series, CSV/markdown emitters).

use fpsnr_metrics::summary::{DatasetSummary, FieldOutcome};

/// Render Table II in the paper's layout: one row per user-set PSNR, with
/// AVG/STDEV column pairs per data set (column order follows `summaries`'
/// first occurrence order).
pub fn render_table2(rows: &[(f64, Vec<DatasetSummary>)]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str("User-set PSNR (dB)");
    for s in &rows[0].1 {
        out.push_str(&format!(" | {} AVG | {} STDEV", s.dataset, s.dataset));
    }
    out.push('\n');
    for (target, summaries) in rows {
        out.push_str(&format!("{target:>18.0}"));
        for s in summaries {
            out.push_str(&format!(" | {:>7.1} | {:>9.2}", s.avg, s.stdev));
        }
        out.push('\n');
    }
    out
}

/// Render one Fig. 2 panel: the achieved-PSNR series over all fields plus
/// the meet-rate line the paper quotes ("more than 90+% of fields").
pub fn render_fig2_panel(target: f64, outcomes: &[FieldOutcome]) -> String {
    let mut out = format!("# Fig. 2 panel: user-set PSNR = {target} dB\n");
    out.push_str("# field, achieved_psnr_db\n");
    for o in outcomes {
        out.push_str(&format!("{}, {:.3}\n", o.field, o.achieved_psnr));
    }
    let met = outcomes.iter().filter(|o| o.meets_target()).count();
    out.push_str(&format!(
        "# meet-rate: {met}/{} = {:.1}%\n",
        outcomes.len(),
        100.0 * met as f64 / outcomes.len().max(1) as f64
    ));
    out
}

/// CSV emitter for per-field outcomes (machine-readable companion of the
/// text reports).
pub fn outcomes_csv(outcomes: &[FieldOutcome]) -> String {
    let mut out = String::from("field,target_psnr,achieved_psnr,deviation,ratio,meets,error\n");
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{:.4},{:.4},{:.3},{},{}\n",
            o.field,
            o.target_psnr,
            o.achieved_psnr,
            o.deviation(),
            o.ratio,
            o.meets_target(),
            o.failure
                .as_ref()
                .map(|f| f.to_string().replace(',', ";"))
                .unwrap_or_default()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(dataset: &str, target: f64, avg: f64, stdev: f64) -> DatasetSummary {
        DatasetSummary {
            dataset: dataset.to_string(),
            target_psnr: target,
            avg,
            stdev,
            meet_rate: 1.0,
            mean_abs_deviation: (avg - target).abs(),
            n_fields: 3,
        }
    }

    #[test]
    fn table2_layout() {
        let rows = vec![
            (
                20.0,
                vec![summary("NYX", 20.0, 24.3, 1.82), summary("ATM", 20.0, 21.9, 3.34)],
            ),
            (
                40.0,
                vec![summary("NYX", 40.0, 41.9, 2.32), summary("ATM", 40.0, 40.9, 1.80)],
            ),
        ];
        let s = render_table2(&rows);
        assert!(s.contains("NYX AVG"));
        assert!(s.contains("ATM STDEV"));
        assert!(s.contains("24.3"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(render_table2(&[]).is_empty());
    }

    #[test]
    fn fig2_panel_contains_meet_rate() {
        let outs = vec![
            FieldOutcome {
                field: "A".into(),
                target_psnr: 80.0,
                achieved_psnr: 81.0,
                ratio: 5.0,
                failure: None,
            },
            FieldOutcome {
                field: "B".into(),
                target_psnr: 80.0,
                achieved_psnr: 79.0,
                ratio: 6.0,
                failure: None,
            },
        ];
        let s = render_fig2_panel(80.0, &outs);
        assert!(s.contains("meet-rate: 1/2 = 50.0%"));
        assert!(s.contains("A, 81.000"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let outs = vec![FieldOutcome {
            field: "X".into(),
            target_psnr: 60.0,
            achieved_psnr: 60.5,
            ratio: 12.0,
            failure: None,
        }];
        let csv = outcomes_csv(&outs);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("field,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("X,60,60.5"));
        assert!(row.ends_with("true,"));
    }
}
