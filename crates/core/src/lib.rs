//! # fpsnr-core — fixed-PSNR lossy compression
//!
//! The primary contribution of *Tao, Di, Liang, Chen, Cappello — Fixed-PSNR
//! Lossy Compression for Scientific Data (CLUSTER 2018)*: let users request
//! a target **PSNR** instead of a pointwise error bound, and hit it in a
//! single compression pass.
//!
//! The chain of reasoning, mapped to modules:
//!
//! 1. For prediction-based (Theorem 1) and orthogonal-transform (Theorem 2)
//!    compressors, the l2 distortion of the reconstructed data equals the
//!    distortion the quantizer introduced — verified end-to-end by the
//!    `theorem_check` experiment binary against both `szlike` and
//!    `fpsnr-transform`.
//! 2. [`distortion`] — quantizer distortion estimates: the general-bin
//!    Eq. 3 (`MSE ≈ Σ δᵢ³·P(mᵢ)/12` per bin) and the distribution-free
//!    uniform special case Eq. 6 (`PSNR = 20·log₁₀(vr/δ) + 10·log₁₀ 12`).
//! 3. [`bound`] — the SZ inversion (Eq. 7–8):
//!    `eb_rel = √3 · 10^(−PSNR/20)`.
//! 4. [`fixed_psnr`] — the three-step fixed-PSNR driver the paper ships:
//!    get the target PSNR, derive `eb_rel`, run unmodified SZ. A
//!    transform-codec variant demonstrates Theorem 3's generality.
//! 5. [`fixed_ratio`] — the dual contract ("give me N× compression"),
//!    answered by ratio–quality modeling: one pilot walk builds a
//!    bits/value curve that is inverted for the bound, with at most two
//!    bounded secant refinements on measured ratios.
//! 6. [`search`] — the pre-paper baseline (rerun the compressor, bisecting
//!    the bound until PSNR lands), kept for the motivation experiment.
//! 7. [`batch`] — parallel multi-field runner (the CESM "100+ fields"
//!    scenario) and per-data-set aggregation.
//! 8. [`slab`] — slab-parallel compression of one huge field (independent
//!    SZ streams along axis 0 sharing one global bound), the within-field
//!    parallel axis SZ's MPI deployments use.
//! 9. [`alloc`] — snapshot-level global bit allocation: one byte budget
//!    across all fields, solved on per-field predicted rate curves
//!    (max-min PSNR water-filling or weighted-MSE Lagrangian), with one
//!    bounded feedback correction — ≤ 2 compression passes per field.
//!
//! ```
//! use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
//! use ndfield::Field;
//!
//! let field = Field::from_fn_2d(64, 64, |i, j| ((i + j) as f32 * 0.1).sin());
//! let run = compress_fixed_psnr(&field, 80.0, &FixedPsnrOptions::default()).unwrap();
//! assert!((run.outcome.achieved_psnr - 80.0).abs() < 3.0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod batch;
pub mod bound;
pub mod distortion;
pub mod fixed_psnr;
pub mod fixed_ratio;
pub mod mode;
pub mod report;
pub mod search;
pub mod slab;

pub use alloc::{
    allocate_snapshot, AllocFieldRun, AllocObjective, AllocOptions, AnyField, SnapshotAllocation,
    SnapshotField,
};
pub use bound::{ebabs_for_psnr, ebrel_for_psnr, psnr_for_ebrel};
pub use distortion::{mse_uniform, psnr_sz_estimate, psnr_uniform_estimate};
pub use fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions, FixedPsnrRun};
pub use fixed_ratio::{compress_fixed_ratio, FixedRatioOptions, FixedRatioRun};
pub use mode::{compress_with_mode, CompressionMode, ModeReport};
