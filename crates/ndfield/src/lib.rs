//! # ndfield — n-dimensional scientific field substrate
//!
//! Every component of the fixed-PSNR stack (compressors, metrics, data
//! generators, experiment harnesses) operates on regular grids of
//! floating-point samples: the *fields* dumped by HPC simulations such as
//! CESM-ATM (2D), Hurricane-Isabel (3D) and NYX (3D).
//!
//! This crate provides the shared substrate:
//!
//! - [`Shape`] — 1/2/3-dimensional row-major (C-order) array shapes with
//!   stride arithmetic,
//! - [`Field`] — an owned, densely stored field of [`Scalar`] samples,
//! - [`stats`] — streaming statistics (min/max/value-range/moments) with the
//!   exact value-range definition used by SZ and the paper,
//! - [`io`] — raw little-endian binary I/O in the layout scientific dumps
//!   use (flat array of `f32`/`f64`, no header).
//!
//! The crate is deliberately free of compression logic; it is the layer the
//! paper's "data set" abstraction lives on.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod field;
pub mod io;
pub mod scalar;
pub mod shape;
pub mod stats;

pub use field::Field;
pub use scalar::Scalar;
pub use shape::Shape;
pub use stats::FieldStats;
