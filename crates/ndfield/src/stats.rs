//! Streaming field statistics.
//!
//! The fixed-PSNR bound derivation (paper Eq. 7–8) needs exactly one data
//! statistic: the value range `vr = max − min`. SZ computes it in a single
//! pass before compression; we do the same and additionally track moments
//! used by the data generators and the evaluation reports.


/// One-pass statistics over the finite samples of a field.
///
/// Non-finite samples (NaN/±inf) are counted but excluded from min/max and
/// moments, matching how SZ handles fill values in practice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FieldStats {
    /// Number of finite samples.
    pub count: usize,
    /// Number of non-finite samples skipped.
    pub non_finite: usize,
    /// Minimum finite sample (`+inf` when `count == 0`).
    pub min: f64,
    /// Maximum finite sample (`−inf` when `count == 0`).
    pub max: f64,
    /// Arithmetic mean of finite samples (0 when `count == 0`).
    pub mean: f64,
    /// Population variance of finite samples (0 when `count == 0`).
    pub variance: f64,
}

impl FieldStats {
    /// Compute statistics from an iterator of samples using Welford's
    /// numerically stable online algorithm.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut non_finite = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for v in samples {
            if !v.is_finite() {
                non_finite += 1;
                continue;
            }
            count += 1;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
        }
        let variance = if count > 0 { m2 / count as f64 } else { 0.0 };
        FieldStats {
            count,
            non_finite,
            min,
            max,
            mean: if count > 0 { mean } else { 0.0 },
            variance,
        }
    }

    /// Value range `max − min` (0 when fewer than two finite samples).
    pub fn range(&self) -> f64 {
        if self.count == 0 || self.max <= self.min {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Mean and sample standard deviation of a slice — the `AVG` / `STDEV`
/// columns of the paper's Table II (computed over the achieved PSNRs of all
/// fields in a data set).
///
/// Uses the *sample* (n−1) standard deviation, the convention spreadsheet
/// `STDEV` uses. Returns `(0, 0)` for empty input and `(mean, 0)` for a
/// single value.
pub fn mean_stdev(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let ss = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>();
    (mean, (ss / (n - 1.0)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = FieldStats::from_samples(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn basic_moments() {
        let s = FieldStats::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.range(), 3.0);
    }

    #[test]
    fn skips_non_finite() {
        let s = FieldStats::from_samples([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.non_finite, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.range(), 2.0);
    }

    #[test]
    fn constant_field_has_zero_range() {
        let s = FieldStats::from_samples([5.0; 10]);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn welford_matches_naive_on_large_offset() {
        // Large common offset is where the naive sum-of-squares formula
        // loses precision; Welford must not.
        let vals: Vec<f64> = (0..1000).map(|i| 1.0e9 + (i % 7) as f64).collect();
        let s = FieldStats::from_samples(vals.iter().copied());
        let mean = vals.iter().sum::<f64>() / 1000.0;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 1000.0;
        assert!((s.mean - mean).abs() / mean < 1e-12);
        assert!((s.variance - var).abs() / var < 1e-6);
    }

    #[test]
    fn mean_stdev_matches_hand_computation() {
        let (m, sd) = mean_stdev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        // Sample stdev of this classic example is sqrt(32/7).
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_stdev_degenerate_inputs() {
        assert_eq!(mean_stdev(&[]), (0.0, 0.0));
        assert_eq!(mean_stdev(&[3.0]), (3.0, 0.0));
    }
}
