//! Row-major array shapes for 1/2/3-dimensional regular grids.
//!
//! The paper's data sets are 2D (CESM-ATM, `1800 × 3600`) and 3D
//! (Hurricane `100 × 500 × 500`, NYX `2048³`). Following SZ's convention,
//! dimensions are listed slowest-varying first (C order): a 3D shape
//! `[d0, d1, d2]` stores element `(i, j, k)` at linear offset
//! `i·d1·d2 + j·d2 + k`.


/// Shape of a 1-, 2- or 3-dimensional row-major grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// 1D series of `n` samples.
    D1(usize),
    /// 2D grid, `rows × cols`, `cols` fastest-varying.
    D2(usize, usize),
    /// 3D grid, `d0 × d1 × d2`, `d2` fastest-varying.
    D3(usize, usize, usize),
}

impl Shape {
    /// Build a shape from a slice of 1–3 extents (slowest-varying first).
    ///
    /// # Panics
    /// Panics when `dims` is empty, longer than 3, or contains a zero extent.
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 3,
            "shape must have 1-3 dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in {dims:?}"
        );
        match *dims {
            [n] => Shape::D1(n),
            [r, c] => Shape::D2(r, c),
            [a, b, c] => Shape::D3(a, b, c),
            _ => unreachable!(),
        }
    }

    /// Number of dimensions (1, 2 or 3).
    #[inline]
    pub fn rank(&self) -> usize {
        match self {
            Shape::D1(_) => 1,
            Shape::D2(..) => 2,
            Shape::D3(..) => 3,
        }
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            Shape::D1(n) => n,
            Shape::D2(r, c) => r * c,
            Shape::D3(a, b, c) => a * b * c,
        }
    }

    /// `true` when the grid holds no elements (never true for valid shapes,
    /// kept for API completeness with `len`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extents as a vector, slowest-varying first.
    pub fn dims(&self) -> Vec<usize> {
        match *self {
            Shape::D1(n) => vec![n],
            Shape::D2(r, c) => vec![r, c],
            Shape::D3(a, b, c) => vec![a, b, c],
        }
    }

    /// Row-major strides, matching [`Shape::dims`] order.
    ///
    /// For `D3(a, b, c)` the strides are `[b·c, c, 1]`.
    pub fn strides(&self) -> Vec<usize> {
        match *self {
            Shape::D1(_) => vec![1],
            Shape::D2(_, c) => vec![c, 1],
            Shape::D3(_, b, c) => vec![b * c, c, 1],
        }
    }

    /// Linear offset of a multi-index (length must equal [`Shape::rank`]).
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        match (*self, idx) {
            (Shape::D1(n), [i]) => {
                assert!(*i < n, "index {i} out of bounds for D1({n})");
                *i
            }
            (Shape::D2(r, c), [i, j]) => {
                assert!(*i < r && *j < c, "index ({i},{j}) out of bounds for D2({r},{c})");
                i * c + j
            }
            (Shape::D3(a, b, c), [i, j, k]) => {
                assert!(
                    *i < a && *j < b && *k < c,
                    "index ({i},{j},{k}) out of bounds for D3({a},{b},{c})"
                );
                i * b * c + j * c + k
            }
            _ => panic!(
                "rank mismatch: shape has rank {}, index has {}",
                self.rank(),
                idx.len()
            ),
        }
    }

    /// In-memory payload size in bytes for elements of `elem_bytes` each.
    #[inline]
    pub fn byte_len(&self, elem_bytes: usize) -> usize {
        self.len() * elem_bytes
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Shape::D1(n) => write!(f, "{n}"),
            Shape::D2(r, c) => write!(f, "{r}x{c}"),
            Shape::D3(a, b, c) => write!(f, "{a}x{b}x{c}"),
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dims_roundtrip() {
        for dims in [vec![7], vec![3, 4], vec![2, 3, 4]] {
            assert_eq!(Shape::from_dims(&dims).dims(), dims);
        }
    }

    #[test]
    #[should_panic(expected = "1-3 dimensions")]
    fn from_dims_rejects_rank4() {
        Shape::from_dims(&[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn from_dims_rejects_zero_extent() {
        Shape::from_dims(&[4, 0]);
    }

    #[test]
    fn lens() {
        assert_eq!(Shape::D1(5).len(), 5);
        assert_eq!(Shape::D2(3, 4).len(), 12);
        assert_eq!(Shape::D3(2, 3, 4).len(), 24);
    }

    #[test]
    fn strides_match_row_major() {
        assert_eq!(Shape::D1(5).strides(), vec![1]);
        assert_eq!(Shape::D2(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::D3(2, 3, 4).strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offsets_enumerate_linearly_3d() {
        let s = Shape::D3(2, 3, 4);
        let mut expect = 0usize;
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(s.offset(&[i, j, k]), expect);
                    expect += 1;
                }
            }
        }
    }

    #[test]
    fn offsets_enumerate_linearly_2d() {
        let s = Shape::D2(3, 4);
        let mut expect = 0usize;
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(s.offset(&[i, j]), expect);
                expect += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::D2(3, 4).offset(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn offset_rank_checked() {
        Shape::D2(3, 4).offset(&[1]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::D3(100, 500, 500).to_string(), "100x500x500");
        assert_eq!(Shape::D2(1800, 3600).to_string(), "1800x3600");
        assert_eq!(Shape::D1(42).to_string(), "42");
    }

    #[test]
    fn byte_len_scales_with_elem_size() {
        assert_eq!(Shape::D2(10, 10).byte_len(4), 400);
        assert_eq!(Shape::D2(10, 10).byte_len(8), 800);
    }
}
