//! Raw binary field I/O.
//!
//! Scientific dumps (including the SZ test corpus the paper uses) are flat
//! little-endian arrays with the grid dimensions carried out of band. These
//! helpers read/write that format so the CLI can operate on real dump files.

use crate::{Field, Scalar, Shape};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Serialize a field's samples as a flat little-endian array (no header).
pub fn to_le_bytes<T: Scalar>(field: &Field<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(field.len() * T::BYTES);
    for &v in field.as_slice() {
        v.write_le(&mut out);
    }
    out
}

/// Deserialize a flat little-endian array into a field of the given shape.
///
/// # Errors
/// Returns [`io::ErrorKind::InvalidData`] when `bytes.len()` does not equal
/// `shape.len() * T::BYTES`.
pub fn from_le_bytes<T: Scalar>(shape: Shape, bytes: &[u8]) -> io::Result<Field<T>> {
    let expect = shape.byte_len(T::BYTES);
    if bytes.len() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "raw field size mismatch: shape {shape} with {} needs {expect} bytes, got {}",
                T::TAG,
                bytes.len()
            ),
        ));
    }
    let mut data = Vec::with_capacity(shape.len());
    for chunk in bytes.chunks_exact(T::BYTES) {
        data.push(T::read_le(chunk));
    }
    Ok(Field::from_vec(shape, data))
}

/// Write a field to a raw little-endian binary file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_raw<T: Scalar>(field: &Field<T>, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(&to_le_bytes(field))
}

/// Read a raw little-endian binary file as a field of the given shape.
///
/// # Errors
/// Propagates filesystem errors; returns [`io::ErrorKind::InvalidData`] on a
/// size mismatch between the file and the shape.
pub fn read_raw<T: Scalar>(shape: Shape, path: impl AsRef<Path>) -> io::Result<Field<T>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    from_le_bytes(shape, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_roundtrip_f32() {
        let f = Field::from_fn_2d(3, 5, |i, j| (i as f32) * 0.5 - j as f32);
        let bytes = to_le_bytes(&f);
        assert_eq!(bytes.len(), 60);
        let g: Field<f32> = from_le_bytes(f.shape(), &bytes).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn le_roundtrip_f64() {
        let f = Field::from_fn_3d(2, 3, 2, |i, j, k| (i + 10 * j + 100 * k) as f64 * 0.125);
        let g: Field<f64> = from_le_bytes(f.shape(), &to_le_bytes(&f)).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn size_mismatch_is_invalid_data() {
        let err = from_le_bytes::<f32>(Shape::D1(4), &[0u8; 15]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ndfield_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.raw");
        let f = Field::from_fn_2d(8, 8, |i, j| ((i * 8 + j) as f32).sin());
        write_raw(&f, &path).unwrap();
        let g: Field<f32> = read_raw(f.shape(), &path).unwrap();
        assert_eq!(g, f);
        std::fs::remove_file(path).ok();
    }
}
