//! Floating-point sample types accepted by the compression stack.
//!
//! Scientific dumps are overwhelmingly `f32` (single precision — all three
//! data sets in the paper) with some `f64` producers. The [`Scalar`] trait
//! abstracts the two so every codec is generic over precision.

use std::fmt::{Debug, Display};

/// A floating-point sample type (`f32` or `f64`).
///
/// The trait is sealed by construction (only implemented here) so codecs can
/// rely on IEEE-754 semantics for the bit-level conversions.
pub trait Scalar:
    Copy + PartialOrd + PartialEq + Debug + Display + Default + Send + Sync + 'static
{
    /// Number of bytes in the on-disk little-endian encoding.
    const BYTES: usize;
    /// Human-readable type tag stored in container headers (`"f32"`/`"f64"`).
    const TAG: &'static str;

    /// Lossless widening to `f64` (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Narrowing from `f64` (rounds to nearest for `f32`).
    fn from_f64(v: f64) -> Self;

    /// Raw IEEE-754 bits widened into a `u64` (upper bits zero for `f32`).
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Scalar::to_bits_u64`].
    fn from_bits_u64(bits: u64) -> Self;

    /// Append the little-endian encoding of `self` to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decode a value from the first [`Scalar::BYTES`] bytes of `src`.
    ///
    /// # Panics
    /// Panics if `src` is shorter than [`Scalar::BYTES`].
    fn read_le(src: &[u8]) -> Self;

    /// `true` when the value is finite (not NaN/±inf).
    fn is_finite_val(self) -> bool;
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const TAG: &'static str = "f32";

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(src: &[u8]) -> Self {
        f32::from_le_bytes(src[..4].try_into().expect("short f32 slice"))
    }
    #[inline]
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const TAG: &'static str = "f64";

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(src: &[u8]) -> Self {
        f64::from_le_bytes(src[..8].try_into().expect("short f64 slice"))
    }
    #[inline]
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_le() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(f32::read_le(&buf), 1.5);
    }

    #[test]
    fn f64_roundtrip_le() {
        let mut buf = Vec::new();
        (-2.25f64).write_le(&mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(f64::read_le(&buf), -2.25);
    }

    #[test]
    fn bits_roundtrip_preserves_nan_payload() {
        let v = f32::from_bits(0x7fc0_1234);
        let back = f32::from_bits_u64(v.to_bits_u64());
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn f64_bits_roundtrip() {
        for v in [0.0f64, -0.0, 1.0, f64::MAX, f64::MIN_POSITIVE, -3.5e-300] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn widening_is_exact_for_f32() {
        for v in [1.0e-37f32, 3.4e38, -7.25, 0.1] {
            assert_eq!(f32::from_f64(v.to_f64()), v);
        }
    }

    #[test]
    fn finite_detection() {
        assert!(1.0f32.is_finite_val());
        assert!(!f32::NAN.is_finite_val());
        assert!(!f64::INFINITY.is_finite_val());
    }

    #[test]
    fn tags_and_sizes() {
        assert_eq!(<f32 as Scalar>::TAG, "f32");
        assert_eq!(<f64 as Scalar>::TAG, "f64");
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }
}
