//! Owned, densely stored scientific fields.

use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::stats::FieldStats;

/// An owned n-dimensional field: a [`Shape`] plus a flat row-major buffer.
///
/// This is the unit of compression throughout the stack — one `Field`
/// corresponds to one variable of one snapshot (e.g. the `CLDHGH` cloud
/// fraction of a CESM-ATM dump).
#[derive(Clone, PartialEq)]
pub struct Field<T: Scalar> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> Field<T> {
    /// Wrap an existing buffer. `data.len()` must equal `shape.len()`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Field { shape, data }
    }

    /// A field of `shape.len()` default-initialised (zero) samples.
    pub fn zeros(shape: Shape) -> Self {
        Field {
            shape,
            data: vec![T::default(); shape.len()],
        }
    }

    /// Build a field by evaluating `f` at every linear index in row-major
    /// order.
    pub fn from_fn_linear(shape: Shape, mut f: impl FnMut(usize) -> T) -> Self {
        let data = (0..shape.len()).map(&mut f).collect();
        Field { shape, data }
    }

    /// Build a 2D field by evaluating `f(row, col)`.
    pub fn from_fn_2d(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let shape = Shape::D2(rows, cols);
        let mut data = Vec::with_capacity(shape.len());
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Field { shape, data }
    }

    /// Build a 3D field by evaluating `f(i, j, k)`.
    pub fn from_fn_3d(
        d0: usize,
        d1: usize,
        d2: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let shape = Shape::D3(d0, d1, d2);
        let mut data = Vec::with_capacity(shape.len());
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    data.push(f(i, j, k));
                }
            }
        }
        Field { shape, data }
    }

    /// The field's shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the field holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major sample buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the field, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Sample at a multi-index (`idx.len()` must equal the rank).
    #[inline]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Overwrite the sample at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// Apply `f` to every sample in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// A new field with `f` applied to every sample.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Self {
        Field {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Streaming statistics over all finite samples (see [`FieldStats`]).
    pub fn stats(&self) -> FieldStats {
        FieldStats::from_samples(self.data.iter().map(|v| v.to_f64()))
    }

    /// Value range `max − min` over finite samples — the `vr` of the paper's
    /// Eq. (4)–(7) and SZ's value-range-relative error bound.
    ///
    /// Returns 0.0 for constant fields (SZ treats those as perfectly
    /// predictable; the fixed-PSNR driver special-cases them).
    pub fn value_range(&self) -> f64 {
        self.stats().range()
    }

    /// Copy a rectangular block out of a 2D field into `dst`
    /// (row-major `bh × bw`), clamping reads at the field edge by
    /// replicating the last valid sample. Used by blockwise codecs.
    ///
    /// # Panics
    /// Panics if the field is not 2D or `dst` is shorter than `bh*bw`.
    pub fn copy_block_2d(&self, r0: usize, c0: usize, bh: usize, bw: usize, dst: &mut [T]) {
        let Shape::D2(rows, cols) = self.shape else {
            panic!("copy_block_2d on non-2D field {}", self.shape)
        };
        assert!(dst.len() >= bh * bw, "block buffer too small");
        for bi in 0..bh {
            let i = (r0 + bi).min(rows - 1);
            for bj in 0..bw {
                let j = (c0 + bj).min(cols - 1);
                dst[bi * bw + bj] = self.data[i * cols + j];
            }
        }
    }

    /// Copy a cuboid block out of a 3D field into `dst`
    /// (row-major `b0 × b1 × b2`), edge-replicated like
    /// [`Field::copy_block_2d`].
    ///
    /// # Panics
    /// Panics if the field is not 3D or `dst` is shorter than `b0*b1*b2`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_block_3d(
        &self,
        i0: usize,
        j0: usize,
        k0: usize,
        b0: usize,
        b1: usize,
        b2: usize,
        dst: &mut [T],
    ) {
        let Shape::D3(d0, d1, d2) = self.shape else {
            panic!("copy_block_3d on non-3D field {}", self.shape)
        };
        assert!(dst.len() >= b0 * b1 * b2, "block buffer too small");
        for bi in 0..b0 {
            let i = (i0 + bi).min(d0 - 1);
            for bj in 0..b1 {
                let j = (j0 + bj).min(d1 - 1);
                for bk in 0..b2 {
                    let k = (k0 + bk).min(d2 - 1);
                    dst[(bi * b1 + bj) * b2 + bk] = self.data[(i * d1 + j) * d2 + k];
                }
            }
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Field<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field<{}>({})", T::TAG, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        let f = Field::from_vec(Shape::D2(2, 3), vec![0.0f32; 6]);
        assert_eq!(f.len(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_mismatch() {
        Field::from_vec(Shape::D2(2, 3), vec![0.0f32; 5]);
    }

    #[test]
    fn from_fn_2d_layout() {
        let f = Field::from_fn_2d(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(f.get(&[1, 2]), 12.0);
    }

    #[test]
    fn from_fn_3d_layout() {
        let f = Field::from_fn_3d(2, 2, 2, |i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(f.get(&[1, 0, 1]), 101.0);
        assert_eq!(f.as_slice()[5], 101.0);
    }

    #[test]
    fn set_then_get() {
        let mut f = Field::<f32>::zeros(Shape::D1(4));
        f.set(&[2], 7.5);
        assert_eq!(f.get(&[2]), 7.5);
    }

    #[test]
    fn map_preserves_shape() {
        let f = Field::from_fn_2d(2, 2, |i, j| (i + j) as f32);
        let g = f.map(|v| v * 2.0);
        assert_eq!(g.shape(), f.shape());
        assert_eq!(g.get(&[1, 1]), 4.0);
    }

    #[test]
    fn value_range_matches_minmax() {
        let f = Field::from_vec(Shape::D1(4), vec![-1.0f32, 3.0, 0.5, 2.0]);
        assert_eq!(f.value_range(), 4.0);
    }

    #[test]
    fn value_range_ignores_nan() {
        let f = Field::from_vec(Shape::D1(4), vec![-1.0f32, f32::NAN, 0.5, 2.0]);
        assert_eq!(f.value_range(), 3.0);
    }

    #[test]
    fn block_copy_2d_interior_and_edge() {
        let f = Field::from_fn_2d(4, 4, |i, j| (i * 4 + j) as f32);
        let mut blk = [0.0f32; 4];
        f.copy_block_2d(1, 1, 2, 2, &mut blk);
        assert_eq!(blk, [5.0, 6.0, 9.0, 10.0]);
        // Edge clamp: block starting at (3,3) replicates the corner.
        f.copy_block_2d(3, 3, 2, 2, &mut blk);
        assert_eq!(blk, [15.0, 15.0, 15.0, 15.0]);
    }

    #[test]
    fn block_copy_3d_edge_replication() {
        let f = Field::from_fn_3d(2, 2, 2, |i, j, k| (i * 4 + j * 2 + k) as f32);
        let mut blk = [0.0f32; 8];
        f.copy_block_3d(1, 1, 1, 2, 2, 2, &mut blk);
        assert_eq!(blk, [7.0; 8]);
    }
}
