//! # fftkit — a small FFT toolkit
//!
//! Provides the spectral machinery the synthetic NYX-like cosmology
//! generator needs (Gaussian random fields with power-law spectra are
//! synthesized in Fourier space and inverse-transformed). No external FFT
//! crate is in the allowed dependency set, so this implements:
//!
//! - [`Complex`] — minimal complex arithmetic,
//! - [`fft`]/[`ifft`] — iterative radix-2 Cooley–Tukey transforms
//!   (power-of-two lengths),
//! - [`nd`] — separable 2-D/3-D transforms applying the 1-D FFT along each
//!   axis.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod complex;
pub mod nd;

pub use complex::Complex;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (callers size grids
/// accordingly; the generators use power-of-two grids by construction).
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT, normalised by `1/N` so `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes. Twiddles are recomputed per stage from a stage
    // root; accuracy is ample for synthesis purposes (~1e-12 relative).
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2].mul(w);
                data[start + k] = a.add(b);
                data[start + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} != {b:?}"
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for v in &data {
            assert_close(*v, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::ONE; 16];
        fft(&mut data);
        assert_close(data[0], Complex::new(16.0, 0.0), 1e-12);
        for v in &data[1..] {
            assert_close(*v, Complex::ZERO, 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let ph = 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                Complex::new(ph.cos(), ph.sin())
            })
            .collect();
        fft(&mut data);
        for (bin, v) in data.iter().enumerate() {
            if bin == k {
                assert_close(*v, Complex::new(n as f64, 0.0), 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage in bin {bin}: {v:?}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let mut rng_state = 42u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let orig: Vec<Complex> = (0..256).map(|_| Complex::new(next(), next())).collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let orig: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let time_energy: f64 = orig.iter().map(|v| v.abs_sq()).sum();
        let mut data = orig;
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|v| v.abs_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn trivial_lengths() {
        let mut one = vec![Complex::new(3.0, -2.0)];
        fft(&mut one);
        assert_close(one[0], Complex::new(3.0, -2.0), 1e-15);
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
    }
}
