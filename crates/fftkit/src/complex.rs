//! Minimal complex arithmetic for the FFT.

/// A complex number in Cartesian form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex addition.
    #[inline]
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[inline]
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    #[inline]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.abs_sq().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.add(Complex::ZERO), z);
        assert_eq!(z.mul(Complex::ONE), z);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        let p = Complex::new(1.0, 2.0).mul(Complex::new(3.0, 4.0));
        assert_eq!(p, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn conjugate_multiplication_is_abs_sq() {
        let z = Complex::new(2.5, -1.5);
        let p = z.mul(z.conj());
        assert!((p.re - z.abs_sq()).abs() < 1e-15);
        assert!(p.im.abs() < 1e-15);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-15);
        assert!((z.im - 2.0).abs() < 1e-15);
    }
}
