//! Separable 2-D and 3-D transforms.
//!
//! The n-dimensional DFT factorizes into 1-D DFTs along each axis; these
//! helpers gather each axis line into a scratch buffer, run the 1-D
//! transform, and scatter back. Grids are row-major with the last index
//! fastest-varying (matching `ndfield`).

use crate::{fft, ifft, Complex};

/// In-place 2-D FFT of a `rows × cols` row-major grid.
///
/// # Panics
/// Panics unless both extents are powers of two and the buffer length is
/// `rows * cols`.
pub fn fft2(data: &mut [Complex], rows: usize, cols: usize) {
    transform2(data, rows, cols, fft);
}

/// In-place 2-D inverse FFT (normalised; `ifft2(fft2(x)) == x`).
///
/// # Panics
/// Same contract as [`fft2`].
pub fn ifft2(data: &mut [Complex], rows: usize, cols: usize) {
    transform2(data, rows, cols, ifft);
}

fn transform2(data: &mut [Complex], rows: usize, cols: usize, f: fn(&mut [Complex])) {
    assert_eq!(data.len(), rows * cols, "grid size mismatch");
    // Rows are contiguous.
    for r in 0..rows {
        f(&mut data[r * cols..(r + 1) * cols]);
    }
    // Columns via gather/scatter.
    let mut line = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            line[r] = data[r * cols + c];
        }
        f(&mut line);
        for r in 0..rows {
            data[r * cols + c] = line[r];
        }
    }
}

/// In-place 3-D FFT of a `d0 × d1 × d2` row-major grid.
///
/// # Panics
/// Panics unless all extents are powers of two and the buffer length is
/// `d0 * d1 * d2`.
pub fn fft3(data: &mut [Complex], d0: usize, d1: usize, d2: usize) {
    transform3(data, d0, d1, d2, fft);
}

/// In-place 3-D inverse FFT (normalised).
///
/// # Panics
/// Same contract as [`fft3`].
pub fn ifft3(data: &mut [Complex], d0: usize, d1: usize, d2: usize) {
    transform3(data, d0, d1, d2, ifft);
}

fn transform3(data: &mut [Complex], d0: usize, d1: usize, d2: usize, f: fn(&mut [Complex])) {
    assert_eq!(data.len(), d0 * d1 * d2, "grid size mismatch");
    // Axis 2 (contiguous lines).
    for i in 0..d0 * d1 {
        f(&mut data[i * d2..(i + 1) * d2]);
    }
    // Axis 1.
    let mut line1 = vec![Complex::ZERO; d1];
    for i in 0..d0 {
        for k in 0..d2 {
            for j in 0..d1 {
                line1[j] = data[(i * d1 + j) * d2 + k];
            }
            f(&mut line1);
            for j in 0..d1 {
                data[(i * d1 + j) * d2 + k] = line1[j];
            }
        }
    }
    // Axis 0.
    let mut line0 = vec![Complex::ZERO; d0];
    for j in 0..d1 {
        for k in 0..d2 {
            for i in 0..d0 {
                line0[i] = data[(i * d1 + j) * d2 + k];
            }
            f(&mut line0);
            for i in 0..d0 {
                data[(i * d1 + j) * d2 + k] = line0[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_grid(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                Complex::new(
                    (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5,
                    ((s >> 7) & 0xffff) as f64 / 65536.0 - 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn fft2_roundtrip() {
        let (r, c) = (16, 8);
        let orig = lcg_grid(r * c, 7);
        let mut data = orig.clone();
        fft2(&mut data, r, c);
        ifft2(&mut data, r, c);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft3_roundtrip() {
        let (a, b, c) = (8, 4, 16);
        let orig = lcg_grid(a * b * c, 99);
        let mut data = orig.clone();
        fft3(&mut data, a, b, c);
        ifft3(&mut data, a, b, c);
        for (x, y) in orig.iter().zip(&data) {
            assert!((x.re - y.re).abs() < 1e-10 && (x.im - y.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft2_dc_bin_is_grid_sum() {
        let (r, c) = (4, 4);
        let mut data = vec![Complex::new(2.0, 0.0); r * c];
        fft2(&mut data, r, c);
        assert!((data[0].re - 32.0).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn fft3_plane_wave_lands_in_one_bin() {
        let (d0, d1, d2) = (4, 8, 4);
        let (k0, k1, k2) = (1usize, 3usize, 2usize);
        let mut data = vec![Complex::ZERO; d0 * d1 * d2];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let ph = 2.0 * std::f64::consts::PI
                        * (k0 * i) as f64 / d0 as f64
                        + 2.0 * std::f64::consts::PI * (k1 * j) as f64 / d1 as f64
                        + 2.0 * std::f64::consts::PI * (k2 * k) as f64 / d2 as f64;
                    data[(i * d1 + j) * d2 + k] = Complex::new(ph.cos(), ph.sin());
                }
            }
        }
        fft3(&mut data, d0, d1, d2);
        let hot = (k0 * d1 + k1) * d2 + k2;
        for (idx, v) in data.iter().enumerate() {
            if idx == hot {
                assert!((v.re - (d0 * d1 * d2) as f64).abs() < 1e-8);
            } else {
                assert!(v.abs() < 1e-8, "leakage at {idx}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn wrong_size_rejected() {
        let mut data = vec![Complex::ZERO; 10];
        fft2(&mut data, 4, 4);
    }
}
