//! # criterion (offline shim)
//!
//! The workspace builds with no network access, so the real `criterion`
//! crate cannot be fetched. This package keeps the *name* and the API
//! subset the `crates/bench/benches/*.rs` targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — so those targets
//! compile and run unchanged under `cargo bench`.
//!
//! Measurement is intentionally simple: after a short calibration run, each
//! benchmark body is repeated enough times to fill a fixed measurement
//! window, and the mean wall-clock time per iteration is printed (with
//! throughput when the group declared one). There are no statistics,
//! no outlier rejection and no HTML reports — for publication-grade
//! numbers, run the dedicated experiment bins in `crates/bench/src/bin/`
//! several times and aggregate externally.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark context, passed to every `criterion_group!` target.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n{name}");
        BenchmarkGroup {
            window: self.measurement_window,
            throughput: None,
        }
    }
}

/// Declared work-per-iteration, used to derive throughput from the mean
/// iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup {
    window: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// window rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare the work performed by one iteration of every benchmark in
    /// this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(self.window);
        f(&mut b);
        b.report(&id.into().0, self.throughput);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.window);
        f(&mut b, input);
        b.report(&id.0, self.throughput);
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Timer handed to the benchmark body; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    window: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(window: Duration) -> Self {
        Bencher {
            window,
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Measure a closure: calibrate with one run, size the batch to the
    /// measurement window, then time the batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let n = (self.window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..n {
            std_black_box(f());
        }
        let total = t1.elapsed();
        self.mean_ns = total.as_nanos() as f64 / n as f64;
        self.iters = n;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("  {name:<40} (no measurement)");
            return;
        }
        let time = fmt_time(self.mean_ns);
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MiB/s", b as f64 / (self.mean_ns / 1e9) / (1u64 << 20) as f64)
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.1} Melem/s", e as f64 / (self.mean_ns / 1e9) / 1e6)
            }
            None => String::new(),
        };
        println!("  {name:<40} {time:>12}/iter{rate}   ({} iters)", self.iters);
    }
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a runnable group, as the real crate
/// does. The configuration-customising form is not supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(b.iters >= 1);
        assert!(b.mean_ns.is_finite() && b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("add", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("name").0, "name");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(12.0), "12 ns");
        assert_eq!(fmt_time(1.2e4), "12.000 us");
        assert_eq!(fmt_time(1.2e7), "12.000 ms");
        assert_eq!(fmt_time(1.2e10), "12.000 s");
    }
}
