//! The per-test runner state: configuration, deterministic PRNG, and the
//! case-level result type the assertion macros produce.

/// Runner configuration. Only the knob this workspace uses is exposed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of *accepted* cases to run per property.
    pub cases: u32,
}

impl Config {
    /// Run `cases` accepted inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Mirror the real crate: a `PROPTEST_CASES` environment variable
        // overrides the default case count, so CI can run the same
        // properties at a raised count (fuzz-smoke jobs) without touching
        // the tests. Explicit `with_cases` values are not overridden.
        if let Some(cases) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&c| c > 0)
        {
            return Config { cases };
        }
        // The real crate defaults to 256; 64 keeps the full-stack
        // compression properties fast while still sampling broadly.
        Config { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample without counting.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` falsified the property.
    Fail(String),
}

/// Result of one sampled case inside a `proptest!` body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic test PRNG (SplitMix64), seeded from the test name so each
/// property gets an independent, reproducible stream. No global state, no
/// OS entropy: a failure seen once reproduces on every machine.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_distinct_streams() {
        let a = TestRng::from_name("alpha").next_u64();
        let b = TestRng::from_name("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
