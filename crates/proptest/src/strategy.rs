//! Input strategies: how test-case values are sampled.
//!
//! A [`Strategy`] is anything that can draw a value from the deterministic
//! test PRNG. Plain range expressions (`0u32..100`, `1u8..=255`,
//! `-1.0f32..1.0`) are strategies, as is [`any`] for "whole domain" types.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of sampled test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw a value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Whole-domain strategy for `T` (`any::<u64>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Create the whole-domain strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Width fits in u64 for every integer type used here.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, i8, i16, i32, i64, usize);

// u64 ranges need the full width; handled without the i128 detour.
impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let v = (-6i32..2).sample(&mut r);
            assert!((-6..2).contains(&v));
            let v = (1u8..=255).sample(&mut r);
            assert!(v >= 1);
            let v = (-2.5f32..7.5).sample(&mut r);
            assert!((-2.5..7.5).contains(&v));
            let v = (5.0f64..180.0).sample(&mut r);
            assert!((5.0..180.0).contains(&v));
        }
    }

    #[test]
    fn any_covers_width() {
        let mut r = rng();
        let mut seen_high_bit = false;
        for _ in 0..64 {
            if any::<u64>().sample(&mut r) >> 63 == 1 {
                seen_high_bit = true;
            }
        }
        assert!(seen_high_bit, "64 draws never set the top bit");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut r = rng();
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..9).sample(&mut r);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
