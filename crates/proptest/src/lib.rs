//! # proptest (offline shim)
//!
//! The workspace builds with no network access, so the real `proptest`
//! crate cannot be fetched. This package keeps the *name* and the API
//! subset the test suites actually use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `any`, range strategies,
//! `collection::vec`, `bool::ANY`, `ProptestConfig::with_cases` — so the
//! property tests compile and run unchanged.
//!
//! Semantics are deliberately simpler than the real crate:
//!
//! - inputs are sampled from a deterministic per-test PRNG (seeded from the
//!   test name), so failures reproduce exactly across runs and platforms;
//! - there is **no shrinking** — a failing case panics with the sampled
//!   values' `Debug` formatting via the assertion message instead;
//! - `prop_assume!` rejections re-sample, with a generous cap to catch
//!   filters that reject everything.
//!
//! That trade-off keeps the shim a few hundred lines while preserving the
//! property-test intent: every invariant is exercised over many sampled
//! inputs, not just hand-picked ones.

#![warn(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    pub struct BoolAny;

    /// `proptest::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..50)) {
///         prop_assert!(v.len() < 50);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 100_000,
                                "prop_assume rejected 100000 inputs in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} falsified (case {}): {}", stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $( $(#[$meta])* fn $name( $( $arg in $strat ),+ ) $body )*
        }
    };
}

/// Assert inside a `proptest!` body; failure fails the *case* (with the
/// formatted message) rather than unwinding through the sampler.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Discard the current case (re-sampled, not counted) when its inputs do
/// not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
