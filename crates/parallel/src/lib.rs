//! # fpsnr-parallel — minimal data-parallel runtime
//!
//! The paper's motivating scenario is compressing *many* fields per
//! snapshot (CESM involves 100+ fields); the natural parallel axis is one
//! task per field, plus chunked parallelism inside the data generators.
//!
//! The domain guides recommend Rayon-style data parallelism, but Rayon is
//! not in this project's allowed dependency set, so this crate implements
//! the needed subset on `crossbeam`:
//!
//! - [`par_map`] / [`par_map_indexed`] — dynamically scheduled parallel map
//!   over a slice, preserving input order in the output,
//! - [`par_chunks_mut`] — in-place parallel mutation of disjoint chunks,
//! - [`pool::ThreadPool`] — a persistent worker pool for repeated batches
//!   (benchmarks re-submit work without re-spawning threads).
//!
//! All primitives are data-race-free by construction: work is distributed
//! through an atomic cursor, results flow through channels, and mutable
//! state is partitioned with `split_at_mut` semantics (`chunks_mut`).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 16 (the experiment harness never benefits past
/// that on these workloads).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Parallel map over a slice with dynamic (work-stealing-style) scheduling:
/// each worker repeatedly claims the next unprocessed index from an atomic
/// cursor, so uneven per-item cost balances automatically (compressing 79
/// ATM fields of very different entropy is exactly that situation).
///
/// Results are returned in input order. With `threads <= 1` or a single
/// item, runs inline with no thread overhead.
///
/// ```
/// let squares = fpsnr_parallel::par_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item))
}

/// [`par_map`] variant whose closure also receives the item index.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    // Hand each worker a disjoint view of the output through a channel of
    // one-slot writers would be heavyweight; instead collect per-worker and
    // scatter afterwards — allocation-light and contention-free.
    let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(s.spawn(move |_| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("parallel map worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    for (i, r) in partials.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("all indices claimed exactly once"))
        .collect()
}

/// Mutate disjoint `chunk_size`-length chunks of `data` in parallel. The
/// closure receives the chunk index and the chunk slice; chunk boundaries
/// are identical to `data.chunks_mut(chunk_size)`.
///
/// # Panics
/// Panics when `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if data.is_empty() {
        return;
    }
    let threads = threads.max(1);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, &mut [T])>();
    for pair in data.chunks_mut(chunk_size).enumerate() {
        tx.send(pair).expect("channel open");
    }
    drop(tx);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let rx = rx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok((i, chunk)) = rx.recv() {
                    f(i, chunk);
                }
            });
        }
    })
    .expect("crossbeam scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_single_thread_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(&items, 1, |&x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn par_map_indexed_sees_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        par_map(&items, 6, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn par_map_uneven_work_balances() {
        // Items with wildly different cost still all complete correctly.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |&x| {
            let iters = if x % 8 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn par_chunks_mut_disjoint_updates() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 100, 4, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 100 + 1) as u64, "index {i}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        par_chunks_mut(&mut data, 16, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![1u8];
        par_chunks_mut(&mut data, 0, 2, |_, _| {});
    }

    #[test]
    fn default_threads_is_positive() {
        let n = default_threads();
        assert!(n >= 1 && n <= 16);
    }
}
