//! # fpsnr-parallel — minimal data-parallel runtime
//!
//! The paper's motivating scenario is compressing *many* fields per
//! snapshot (CESM involves 100+ fields); the natural parallel axis is one
//! task per field, plus chunked parallelism inside the data generators.
//!
//! The domain guides recommend Rayon-style data parallelism, but this
//! project builds fully offline with no external crates, so the needed
//! subset is implemented directly on `std::thread::scope` and
//! `std::sync`:
//!
//! - [`par_map`] / [`par_map_indexed`] — dynamically scheduled parallel map
//!   over a slice, preserving input order in the output,
//! - [`par_chunks_mut`] — in-place parallel mutation of disjoint chunks,
//! - [`pool::ThreadPool`] — a persistent worker pool for repeated batches
//!   (benchmarks re-submit work without re-spawning threads), with
//!   per-worker busy accounting exported through `fpsnr-obs`.
//!
//! All primitives are data-race-free by construction: work is distributed
//! through an atomic cursor or a locked queue, and mutable state is
//! partitioned with `chunks_mut` semantics.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 16 (the experiment harness never benefits past
/// that on these workloads).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Split a thread budget across two nesting levels — an outer parallel
/// map over items (fields of a snapshot) each of which runs an inner
/// parallel stage (blocks of a field) — such that `outer · inner ≤
/// budget`: the composition can never explode into `budget²` threads.
///
/// The outer level is saturated first (item-level parallelism has no
/// synchronization inside the map, block-level parallelism pays merge
/// barriers), then whole leftover factors go inner: with 8 threads and 3
/// items, `(3, 2)` — 3 field tasks, each compressing with 2 block
/// workers, 6 ≤ 8.
///
/// ```
/// assert_eq!(fpsnr_parallel::nested_split(8, 79), (8, 1));  // wide snapshot
/// assert_eq!(fpsnr_parallel::nested_split(8, 3), (3, 2));   // few huge fields
/// assert_eq!(fpsnr_parallel::nested_split(8, 1), (1, 8));   // single field
/// ```
pub fn nested_split(budget: usize, items: usize) -> (usize, usize) {
    let budget = budget.max(1);
    if items == 0 {
        return (1, budget);
    }
    let outer = budget.min(items);
    (outer, (budget / outer).max(1))
}

/// Parallel map over a slice with dynamic (work-stealing-style) scheduling:
/// each worker repeatedly claims the next unprocessed index from an atomic
/// cursor, so uneven per-item cost balances automatically (compressing 79
/// ATM fields of very different entropy is exactly that situation).
///
/// Results are returned in input order. With `threads <= 1` or a single
/// item, runs inline with no thread overhead.
///
/// ```
/// let squares = fpsnr_parallel::par_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item))
}

/// [`par_map`] variant whose closure also receives the item index.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    // Collect per-worker and scatter afterwards — allocation-light and
    // contention-free (no shared mutable output while threads run).
    let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(s.spawn(move || {
                let busy = fpsnr_obs::span_labeled("par_map.worker", worker);
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                drop(busy);
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("parallel map worker panicked"));
        }
    });
    for (i, r) in partials.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("all indices claimed exactly once"))
        .collect()
}

/// Mutate disjoint `chunk_size`-length chunks of `data` in parallel. The
/// closure receives the chunk index and the chunk slice; chunk boundaries
/// are identical to `data.chunks_mut(chunk_size)`.
///
/// # Panics
/// Panics when `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if data.is_empty() {
        return;
    }
    let threads = threads.max(1);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Pre-filled locked work list: workers pop until empty. Chunk order
    // does not matter (the chunks are disjoint by construction).
    let work: Mutex<Vec<(usize, &mut [T])>> =
        Mutex::new(data.chunks_mut(chunk_size).enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let work = &work;
            let f = &f;
            s.spawn(move || loop {
                let item = work.lock().expect("work queue lock").pop();
                match item {
                    Some((i, chunk)) => f(i, chunk),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_single_thread_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(&items, 1, |&x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn par_map_indexed_sees_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        par_map(&items, 6, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn par_map_uneven_work_balances() {
        // Items with wildly different cost still all complete correctly.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |&x| {
            let iters = if x % 8 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "parallel map worker panicked")]
    fn par_map_propagates_worker_panic() {
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, 4, |&x| {
            if x == 13 {
                panic!("unlucky item");
            }
            x
        });
    }

    #[test]
    fn par_chunks_mut_disjoint_updates() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 100, 4, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 100 + 1) as u64, "index {i}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        par_chunks_mut(&mut data, 16, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![1u8];
        par_chunks_mut(&mut data, 0, 2, |_, _| {});
    }

    #[test]
    fn default_threads_is_positive() {
        let n = default_threads();
        assert!(n >= 1 && n <= 16);
    }

    #[test]
    fn nested_split_never_exceeds_budget() {
        for budget in 1..=32 {
            for items in 0..=100 {
                let (outer, inner) = nested_split(budget, items);
                assert!(outer >= 1 && inner >= 1);
                assert!(
                    outer * inner <= budget.max(1),
                    "budget {budget} items {items} -> {outer}x{inner}"
                );
                if items > 0 {
                    assert!(outer <= items.max(1));
                }
            }
        }
    }

    #[test]
    fn nested_split_saturates_outer_first() {
        assert_eq!(nested_split(16, 79), (16, 1));
        assert_eq!(nested_split(4, 4), (4, 1));
        assert_eq!(nested_split(9, 2), (2, 4));
        assert_eq!(nested_split(1, 50), (1, 1));
        assert_eq!(nested_split(0, 5), (1, 1));
        assert_eq!(nested_split(6, 0), (1, 6));
    }
}
