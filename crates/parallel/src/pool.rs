//! A persistent worker pool.
//!
//! The scoped helpers in the crate root spawn threads per call, which is
//! fine for one batch but wasteful when a benchmark harness submits
//! thousands of small batches. [`ThreadPool`] keeps workers alive and feeds
//! them closures through a crossbeam channel; [`ThreadPool::wait`] provides
//! a barrier, implemented with a `parking_lot` mutex + condvar counting
//! in-flight jobs (the "build your own synchronization primitive" pattern
//! from *Rust Atomics and Locks*).

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inflight {
    count: Mutex<usize>,
    zero: Condvar,
}

/// A fixed-size pool of worker threads executing submitted closures.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    inflight: Arc<Inflight>,
}

impl ThreadPool {
    /// Spawn a pool with `n` workers (`n ≥ 1`).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let inflight = Arc::new(Inflight {
            count: Mutex::new(0),
            zero: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let rx = rx.clone();
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("fpsnr-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut c = inflight.count.lock();
                            *c -= 1;
                            if *c == 0 {
                                inflight.zero.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            inflight,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job for asynchronous execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut c = self.inflight.count.lock();
            *c += 1;
        }
        self.tx
            .as_ref()
            .expect("pool alive while not dropped")
            .send(Box::new(job))
            .expect("workers alive while pool not dropped");
    }

    /// Block until every submitted job has finished.
    pub fn wait(&self) {
        let mut c = self.inflight.count.lock();
        while *c != 0 {
            self.inflight.zero.wait(&mut c);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain pending jobs and exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn wait_can_be_reused_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for batch in 1..=3 {
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), batch * 50);
        }
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No wait(): Drop must still let workers finish the queue.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn worker_count_reported() {
        assert_eq!(ThreadPool::new(5).workers(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ThreadPool::new(0);
    }
}
