//! A persistent worker pool.
//!
//! The scoped helpers in the crate root spawn threads per call, which is
//! fine for one batch but wasteful when a benchmark harness submits
//! thousands of small batches. [`ThreadPool`] keeps workers alive and feeds
//! them closures through a locked queue; [`ThreadPool::wait`] provides a
//! barrier, implemented with a `std::sync` mutex + condvar counting
//! in-flight jobs (the "build your own synchronization primitive" pattern
//! from *Rust Atomics and Locks*).
//!
//! Jobs that panic do not wedge the pool: the worker survives, the panic is
//! counted, and the next [`ThreadPool::wait`] propagates it to the caller.
//! When `fpsnr-obs` instrumentation is enabled, each worker accounts its
//! busy nanoseconds and job count (`pool.worker.<i>.busy_ns` /
//! `pool.worker.<i>.jobs`), which together with the pool's wall-clock
//! lifetime give per-worker busy/idle ratios.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs submitted but not yet finished (queued + running).
    inflight: usize,
    /// Jobs whose closure panicked since the last `wait`.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is pushed (or shutdown begins).
    job_ready: Condvar,
    /// Signalled when `inflight` reaches zero.
    idle: Condvar,
}

/// A fixed-size pool of worker threads executing submitted closures.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl ThreadPool {
    /// Spawn a pool with `n` workers (`n ≥ 1`).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                inflight: 0,
                panicked: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fpsnr-pool-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            started: Instant::now(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job for asynchronous execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool state lock");
        state.inflight += 1;
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.job_ready.notify_one();
    }

    /// Block until every submitted job has finished.
    ///
    /// # Panics
    /// Propagates job panics: if any job submitted since the previous
    /// `wait` panicked, this panics once the queue drains.
    pub fn wait(&self) {
        let mut state = self.shared.state.lock().expect("pool state lock");
        while state.inflight != 0 {
            state = self.shared.idle.wait(state).expect("pool idle wait");
        }
        let panicked = std::mem::take(&mut state.panicked);
        drop(state);
        if panicked > 0 {
            panic!("{panicked} pool job(s) panicked");
        }
    }
}

fn worker_loop(index: usize, shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.job_ready.wait(state).expect("pool job wait");
            }
        };
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(job));
        if fpsnr_obs::is_enabled() {
            let ns = t0.elapsed().as_nanos() as u64;
            fpsnr_obs::add_labeled(index, "pool.worker", "busy_ns", ns);
            fpsnr_obs::add_labeled(index, "pool.worker", "jobs", 1);
        }
        let mut state = shared.state.lock().expect("pool state lock");
        state.inflight -= 1;
        if outcome.is_err() {
            state.panicked += 1;
        }
        if state.inflight == 0 {
            shared.idle.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Let workers drain pending jobs, then exit.
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if fpsnr_obs::is_enabled() {
            fpsnr_obs::add(
                "pool.wall_ns",
                self.started.elapsed().as_nanos() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn wait_can_be_reused_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for batch in 1..=3 {
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), batch * 50);
        }
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No wait(): Drop must still let workers finish the queue.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn worker_count_reported() {
        assert_eq!(ThreadPool::new(5).workers(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ThreadPool::new(0);
    }

    #[test]
    fn single_worker_pool_runs_everything() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    #[should_panic(expected = "pool job(s) panicked")]
    fn job_panic_propagates_on_wait() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        pool.wait();
    }

    #[test]
    fn pool_survives_job_panic_and_keeps_working() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        // The panic is latched for the next wait; swallow it there.
        let waited = catch_unwind(AssertUnwindSafe(|| pool.wait()));
        assert!(waited.is_err(), "wait should propagate the job panic");
        // The worker survived: subsequent jobs still run and a clean wait
        // no longer panics.
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn repeated_wait_on_idle_pool_is_cheap() {
        // Contention check: `wait` on an idle pool must be a single
        // lock-check-return, not a condvar spin. 100k calls finishing in
        // well under a second catches any accidental sleep/poll loop.
        let pool = ThreadPool::new(4);
        let t0 = Instant::now();
        for _ in 0..100_000 {
            pool.wait();
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "100k idle waits took {:?} — wait() is spinning",
            t0.elapsed()
        );
    }

    #[test]
    fn concurrent_waiters_all_release_when_queue_drains() {
        // Several threads block in wait() while one slow job runs; all must
        // wake promptly when inflight hits zero (idle is notify_all).
        let pool = Arc::new(ThreadPool::new(2));
        let release = Arc::new(AtomicUsize::new(0));
        pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(100)));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let release = Arc::clone(&release);
                std::thread::spawn(move || {
                    pool.wait();
                    release.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let t0 = Instant::now();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(release.load(Ordering::SeqCst), 4);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "waiters stalled for {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn zero_jobs_then_batch_works() {
        // "Zero-length input" edge: waiting before any submission, then
        // submitting a batch, must behave identically to a fresh pool.
        let pool = ThreadPool::new(3);
        pool.wait();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
