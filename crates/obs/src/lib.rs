//! # fpsnr-obs — pipeline observability
//!
//! Per-stage instrumentation for the fixed-PSNR compression pipeline. The
//! paper's core performance claim — fixed-PSNR mode has *negligible
//! overhead* versus search-based PSNR targeting — rests on knowing where
//! time goes inside the pipeline (predict → quantize → encode → lossless).
//! This crate provides that visibility with three primitives:
//!
//! - **scoped spans** ([`span`], [`scope`]): monotonic stage timers that
//!   nest; a span opened while another is active on the same thread records
//!   under the hierarchical path `parent/child`,
//! - **counters** ([`add`]): monotonically increasing u64 totals (bytes in,
//!   bytes out, compressor invocations, per-worker busy nanoseconds),
//! - **a global registry** ([`snapshot`], [`reset`]): thread-safe
//!   aggregation keyed by span path / counter name, rendered as JSON
//!   ([`Report::to_json`]) or an aligned table ([`Report::render_pretty`]).
//!
//! ## Cost model
//!
//! Instrumentation is **off by default**. Every probe starts with one
//! relaxed atomic load ([`is_enabled`]); while disabled that load and its
//! branch are the entire cost, so instrumented builds are safe to ship.
//! Enabling ([`enable`]) arms the probes: span start/stop takes a
//! monotonic-clock read each, and retiring a span or bumping a counter
//! takes the registry lock once. Probes are placed at *stage* granularity
//! (never per-sample), so the lock is uncontended in practice.
//!
//! For builds that must not carry the probes at all, the `off` cargo
//! feature compiles every entry point down to an empty inline function —
//! the `Disabled`-sink-at-compile-time path.
//!
//! ## Example
//!
//! ```
//! fpsnr_obs::reset();
//! fpsnr_obs::enable();
//! {
//!     let _outer = fpsnr_obs::span("compress");
//!     let _inner = fpsnr_obs::span("quantize");
//!     fpsnr_obs::add("bytes_in", 4096);
//! }
//! fpsnr_obs::disable();
//! let report = fpsnr_obs::snapshot();
//! # #[cfg(not(feature = "off"))]
//! assert!(report.span("compress/quantize").is_some());
//! # #[cfg(not(feature = "off"))]
//! assert_eq!(report.counter("bytes_in"), Some(4096));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod report;

pub use report::{CounterStat, Report, SpanStat};

#[cfg(not(feature = "off"))]
mod imp {
    use crate::report::{CounterStat, Report, SpanStat};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    #[derive(Default)]
    struct Registry {
        spans: HashMap<String, SpanAgg>,
        counters: HashMap<String, u64>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
        // A panic while holding the lock only ever happens in unit tests;
        // the aggregates are plain counters, safe to keep using.
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    thread_local! {
        /// Names of the spans currently open on this thread, outermost
        /// first. Joined with '/' to form the hierarchical path.
        static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    }

    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// RAII stage timer (armed variant); see the crate-root re-export.
    pub struct Span {
        start: Option<Instant>,
    }

    impl Span {
        fn armed(name: String) -> Span {
            SPAN_STACK.with(|s| s.borrow_mut().push(name));
            Span {
                start: Some(Instant::now()),
            }
        }

        pub(crate) const INERT: Span = Span { start: None };
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(start) = self.start else {
                return;
            };
            let ns = start.elapsed().as_nanos() as u64;
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack.join("/");
                stack.pop();
                path
            });
            let mut reg = lock_registry();
            let agg = reg.spans.entry(path).or_default();
            agg.count += 1;
            agg.total_ns += ns;
            agg.max_ns = agg.max_ns.max(ns);
            agg.min_ns = if agg.count == 1 {
                ns
            } else {
                agg.min_ns.min(ns)
            };
        }
    }

    #[inline]
    pub fn span(name: &'static str) -> Span {
        if is_enabled() {
            Span::armed(name.to_string())
        } else {
            Span::INERT
        }
    }

    #[inline]
    pub fn span_labeled(prefix: &str, index: usize) -> Span {
        if is_enabled() {
            Span::armed(format!("{prefix}.{index}"))
        } else {
            Span::INERT
        }
    }

    #[inline]
    pub fn add(name: &str, n: u64) {
        if is_enabled() {
            let mut reg = lock_registry();
            match reg.counters.get_mut(name) {
                Some(v) => *v += n,
                None => {
                    reg.counters.insert(name.to_string(), n);
                }
            }
        }
    }

    #[inline]
    pub fn add_labeled(index: usize, prefix: &str, suffix: &str, n: u64) {
        if is_enabled() {
            add(&format!("{prefix}.{index}.{suffix}"), n);
        }
    }

    pub fn reset() {
        let mut reg = lock_registry();
        reg.spans.clear();
        reg.counters.clear();
    }

    pub fn snapshot() -> Report {
        let reg = lock_registry();
        let mut spans: Vec<SpanStat> = reg
            .spans
            .iter()
            .map(|(path, a)| SpanStat {
                path: path.clone(),
                count: a.count,
                total_ns: a.total_ns,
                min_ns: a.min_ns,
                max_ns: a.max_ns,
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        let mut counters: Vec<CounterStat> = reg
            .counters
            .iter()
            .map(|(name, &value)| CounterStat {
                name: name.clone(),
                value,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        Report { spans, counters }
    }
}

#[cfg(feature = "off")]
mod imp {
    //! Compile-out sink: every probe is an empty inline function the
    //! optimizer erases entirely.

    use crate::report::Report;

    /// Inert stand-in for the RAII stage timer.
    pub struct Span;

    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn enable() {}

    #[inline(always)]
    pub fn disable() {}

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn span_labeled(_prefix: &str, _index: usize) -> Span {
        Span
    }

    #[inline(always)]
    pub fn add(_name: &str, _n: u64) {}

    #[inline(always)]
    pub fn add_labeled(_index: usize, _prefix: &str, _suffix: &str, _n: u64) {}

    #[inline(always)]
    pub fn reset() {}

    pub fn snapshot() -> Report {
        Report {
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }
}

/// RAII stage timer: created by [`span`] / [`span_labeled`], records its
/// elapsed time under the thread's hierarchical span path when dropped.
/// Inert (records nothing) while instrumentation is disabled.
pub use imp::Span;

/// Whether instrumentation is currently armed. One relaxed atomic load —
/// this is the single branch every probe pays when disabled. Constant
/// `false` under the `off` feature.
#[inline]
pub fn is_enabled() -> bool {
    imp::is_enabled()
}

/// Arm the probes process-wide.
pub fn enable() {
    imp::enable()
}

/// Disarm the probes process-wide (spans already open still retire).
pub fn disable() {
    imp::disable()
}

/// Open a stage timer. The returned [`Span`] records elapsed nanoseconds
/// under `parent/.../name` (nesting is per-thread) when dropped.
#[inline]
pub fn span(name: &'static str) -> Span {
    imp::span(name)
}

/// [`span`] with a runtime-numbered name, e.g. `pool.worker.3` — used for
/// per-worker accounting where the index is not known at compile time.
#[inline]
pub fn span_labeled(prefix: &str, index: usize) -> Span {
    imp::span_labeled(prefix, index)
}

/// Time a closure under `name` and return its result.
///
/// ```
/// let v = fpsnr_obs::scope("stage", || 2 + 2);
/// assert_eq!(v, 4);
/// ```
#[inline]
pub fn scope<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

/// Add `n` to the named monotonic counter (bytes, invocations, …).
#[inline]
pub fn add(name: &str, n: u64) {
    imp::add(name, n)
}

/// [`add`] to a runtime-numbered counter `prefix.index.suffix`, e.g.
/// `pool.worker.3.busy_ns`.
#[inline]
pub fn add_labeled(index: usize, prefix: &str, suffix: &str, n: u64) {
    imp::add_labeled(index, prefix, suffix, n)
}

/// Clear every recorded span and counter.
pub fn reset() {
    imp::reset()
}

/// Copy the current aggregates out of the registry. Cheap relative to any
/// workload worth profiling; safe to call while other threads record.
pub fn snapshot() -> Report {
    imp::snapshot()
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry and enable flag are process-global; tests serialize on
    /// this lock so `cargo test`'s parallel runner cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        guard
    }

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let _g = isolated();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _b2 = span("inner");
            }
        }
        disable();
        let r = snapshot();
        let outer = r.span("outer").expect("outer recorded");
        let inner = r.span("outer/inner").expect("nested path recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(r.span("inner").is_none(), "bare inner must not exist");
        assert!(outer.total_ns >= inner.total_ns - inner.max_ns);
        assert!(inner.min_ns <= inner.max_ns);
    }

    #[test]
    fn sibling_threads_do_not_nest_into_each_other() {
        let _g = isolated();
        let t = std::thread::spawn(|| {
            let _s = span("thread_b");
        });
        {
            let _a = span("thread_a");
            t.join().unwrap();
        }
        disable();
        let r = snapshot();
        assert!(r.span("thread_b").is_some());
        assert!(r.span("thread_a/thread_b").is_none());
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let _g = isolated();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        add("hits", 1);
                    }
                });
            }
        });
        add_labeled(3, "worker", "jobs", 7);
        disable();
        let r = snapshot();
        assert_eq!(r.counter("hits"), Some(800));
        assert_eq!(r.counter("worker.3.jobs"), Some(7));
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = isolated();
        disable();
        {
            let _s = span("ghost");
            add("ghost_counter", 5);
        }
        let r = snapshot();
        assert!(r.spans.is_empty(), "span recorded while disabled");
        assert!(r.counters.is_empty(), "counter recorded while disabled");
    }

    #[test]
    fn scope_times_and_returns() {
        let _g = isolated();
        let v = scope("scoped", || 41 + 1);
        assert_eq!(v, 42);
        disable();
        assert_eq!(snapshot().span("scoped").unwrap().count, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = isolated();
        {
            let _s = span("x");
        }
        add("c", 1);
        reset();
        disable();
        let r = snapshot();
        assert!(r.spans.is_empty() && r.counters.is_empty());
    }

    #[test]
    fn json_report_is_well_formed() {
        let _g = isolated();
        {
            let _s = span("stage");
        }
        add("bytes", 123);
        disable();
        let json = snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"path\":\"stage\""));
        assert!(json.contains("\"name\":\"bytes\",\"value\":123"));
    }
}
