//! Snapshot types and the two reporters (JSON and aligned pretty table).
//!
//! Both reporters are hand-rolled: the workspace builds fully offline, so
//! there is no serde. The JSON emitted here is deliberately flat and
//! stable-ordered (spans and counters each sorted by key) so downstream
//! tooling — the `BENCH_*.json` capture described in EXPERIMENTS.md — can
//! diff runs textually.

/// Aggregate statistics for one span path (e.g. `sz.compress/sz.quantize`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Hierarchical '/'-joined path of the span.
    pub path: String,
    /// Number of times the span was entered and retired.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Fastest single entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest single entry, nanoseconds.
    pub max_ns: u64,
}

/// One monotonic counter (bytes, invocations, busy nanoseconds, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name, e.g. `sz.bytes_in` or `pool.worker.3.jobs`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A point-in-time copy of the registry, ready for rendering or queries.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterStat>,
}

impl Report {
    /// Look up a span aggregate by its exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Look up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Render as a single-line JSON object:
    /// `{"spans":[{"path":...,"count":...,"total_ns":...,"min_ns":...,
    /// "max_ns":...}, ...],"counters":[{"name":...,"value":...}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * (self.spans.len() + self.counters.len()));
        out.push_str("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            json_string(&mut out, &s.path);
            out.push_str(&format!(
                ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            ));
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &c.name);
            out.push_str(&format!(",\"value\":{}}}", c.value));
        }
        out.push_str("]}");
        out
    }

    /// Render as an aligned, human-readable table. Span rows are indented
    /// by nesting depth; durations are scaled to the most readable unit.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let name_w = self
                .spans
                .iter()
                .map(|s| display_name(&s.path).len() + 2 * depth(&s.path))
                .max()
                .unwrap_or(4)
                .max(4);
            out.push_str(&format!(
                "  {:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
                "span", "count", "total", "min", "max"
            ));
            for s in &self.spans {
                let indent = "  ".repeat(depth(&s.path));
                out.push_str(&format!(
                    "  {:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
                    format!("{indent}{}", display_name(&s.path)),
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("counters:\n");
            let name_w = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            for c in &self.counters {
                out.push_str(&format!("  {:<name_w$}  {:>16}\n", c.name, c.value));
            }
        }
        if out.is_empty() {
            out.push_str("(no instrumentation recorded)\n");
        }
        out
    }
}

/// Nesting depth of a span path (number of '/' separators).
fn depth(path: &str) -> usize {
    path.matches('/').count()
}

/// Leaf name of a span path.
fn display_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Scale nanoseconds to a fixed-width human unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Append `s` as a JSON string literal (quotes, backslashes, control
/// characters escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            spans: vec![
                SpanStat {
                    path: "a".into(),
                    count: 2,
                    total_ns: 3_000_000,
                    min_ns: 1_000_000,
                    max_ns: 2_000_000,
                },
                SpanStat {
                    path: "a/b".into(),
                    count: 1,
                    total_ns: 500,
                    min_ns: 500,
                    max_ns: 500,
                },
            ],
            counters: vec![CounterStat {
                name: "bytes".into(),
                value: 42,
            }],
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert_eq!(
            j,
            "{\"spans\":[\
             {\"path\":\"a\",\"count\":2,\"total_ns\":3000000,\"min_ns\":1000000,\"max_ns\":2000000},\
             {\"path\":\"a/b\",\"count\":1,\"total_ns\":500,\"min_ns\":500,\"max_ns\":500}],\
             \"counters\":[{\"name\":\"bytes\",\"value\":42}]}"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_indents_nested_spans() {
        let p = sample().render_pretty();
        assert!(p.contains("spans:"));
        assert!(p.contains("counters:"));
        // Leaf 'b' is indented under 'a'.
        assert!(p.contains("\n    b") || p.contains("  b  "), "pretty:\n{p}");
        assert!(p.contains("3.000ms"));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        assert!(Report::default().render_pretty().contains("no instrumentation"));
    }

    #[test]
    fn lookup_helpers() {
        let r = sample();
        assert_eq!(r.span("a/b").unwrap().count, 1);
        assert_eq!(r.counter("bytes"), Some(42));
        assert!(r.span("missing").is_none());
        assert_eq!(r.counter("missing"), None);
    }
}
