//! Decode-hardening suite: the untrusted-bytes contract.
//!
//! Every entry point that accepts container bytes must return a structured
//! [`szlike::DecodeError`] — never panic, never allocate past the declared
//! limits — for *any* input: arbitrary garbage, truncations at every prefix
//! length, and single-bit flips of valid containers. On v2 blocked
//! containers, [`szlike::decompress_partial`] must additionally recover
//! every intact block bit-exactly and report the damaged ones.
//!
//! Case counts follow the in-repo proptest default (64) and can be raised
//! via `PROPTEST_CASES` (the CI `decode-fuzz-smoke` job does exactly that).

mod common;

use common::{golden_set, grain_field, mixed_golden_set, Golden, GoldenField};
use losslesskit::crc32::crc32;
use ndfield::Shape;
use proptest::prelude::*;
use szlike::format::{self, Mode};
use szlike::{
    decompress, decompress_partial, decompress_with_limits, DamageReport, DecodeError,
    DecodeLimits, SzError,
};

/// Seal `body` into a container-shaped byte string by appending the CRC-32
/// trailer, exactly like the encoder does. This lets fuzz inputs get *past*
/// the outer integrity check and into the body parsers.
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Flip one bit in a copy of `bytes`.
fn flip_bit(bytes: &[u8], byte_idx: usize, bit: u8) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v[byte_idx] ^= 1 << (bit & 7);
    v
}

/// Strict decode dispatched on the fixture's scalar type; returns whether
/// it succeeded (the decoded values are irrelevant here).
fn strict_decode_ok(g: &Golden, bytes: &[u8]) -> bool {
    match g.field {
        GoldenField::F32(_) => decompress::<f32>(bytes).is_ok(),
        GoldenField::F64(_) => decompress::<f64>(bytes).is_ok(),
    }
}

/// Partial decode dispatched on the fixture's scalar type; returns only the
/// report (drops the field) so callers can reason about damage uniformly.
fn partial_report(g: &Golden, bytes: &[u8]) -> Result<DamageReport, SzError> {
    match g.field {
        GoldenField::F32(_) => decompress_partial::<f32>(bytes).map(|(_, r)| r),
        GoldenField::F64(_) => decompress_partial::<f64>(bytes).map(|(_, r)| r),
    }
}

// ---------------------------------------------------------------------------
// Truncations: every prefix of every golden container.
// ---------------------------------------------------------------------------

/// Chopping a valid container at *any* byte boundary must yield a clean
/// error from the strict path, and the forgiving path must never report a
/// truncated container as pristine.
#[test]
fn truncations_at_every_prefix_fail_cleanly() {
    for g in golden_set() {
        let bytes = g.compress();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            assert!(
                !strict_decode_ok(&g, prefix),
                "{}: strict decode accepted a {cut}-byte prefix of {} bytes",
                g.name,
                bytes.len()
            );
            // The forgiving path may salvage something, but a truncated
            // container can never present as fully intact.
            if let Ok(rep) = partial_report(&g, prefix) {
                assert!(
                    !rep.is_clean(),
                    "{}: partial decode reported a {cut}-byte prefix as clean",
                    g.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Single-bit flips of valid containers.
// ---------------------------------------------------------------------------

proptest! {
    /// CRC-32 detects every single-bit error, so a strict decode of a
    /// one-bit-flipped container must always be rejected — and the
    /// forgiving decode must never present the flip as a pristine
    /// container.
    #[test]
    fn single_bit_flips_are_always_detected(
        fixture in 0usize..11,
        pos01 in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let set = golden_set();
        let g = &set[fixture % set.len()];
        let bytes = g.compress();
        let idx = ((pos01 * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let flipped = flip_bit(&bytes, idx, bit);
        prop_assert!(
            !strict_decode_ok(g, &flipped),
            "{}: strict decode accepted a bit flip at byte {idx} bit {bit}",
            g.name
        );
        if let Ok(rep) = partial_report(g, &flipped) {
            prop_assert!(
                !rep.is_clean(),
                "{}: partial decode reported bit flip at byte {idx} as clean",
                g.name
            );
        }
    }

    /// On a v2 blocked container, whenever the forgiving decode succeeds
    /// after a bit flip, every sample outside the reported damage must be
    /// bit-identical to the pristine decode (per-block CRCs guarantee it).
    #[test]
    fn flipped_blocked_containers_keep_intact_blocks_exact(
        pos01 in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // blocked_f32_2d: 64×48, block_rows 16 → 4 blocks.
        let set = golden_set();
        let g = set.iter().find(|g| g.name == "blocked_f32_2d").unwrap();
        let bytes = g.compress();
        let (pristine, rep0) = decompress_partial::<f32>(&bytes).unwrap();
        prop_assert!(rep0.is_clean());
        let idx = ((pos01 * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let flipped = flip_bit(&bytes, idx, bit);
        if let Ok((field, rep)) = decompress_partial::<f32>(&flipped) {
            // The header, params and block directory are sealed by the
            // meta CRC, so a successful decode implies the pristine shape.
            prop_assert_eq!(field.shape(), pristine.shape());
            let damaged = |i: usize| rep.damaged.iter().any(|d| d.sample_range.contains(&i));
            for (i, (&a, &b)) in pristine
                .as_slice()
                .iter()
                .zip(field.as_slice())
                .enumerate()
            {
                if damaged(i) {
                    prop_assert!(b.is_nan(), "damaged sample {i} not NaN-filled");
                } else {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "undamaged sample {i} differs after flip at byte {idx} bit {bit}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Arbitrary bytes: raw garbage, and garbage sealed behind a valid header.
// ---------------------------------------------------------------------------

proptest! {
    /// Totally arbitrary bytes must produce a structured error (or, in the
    /// astronomically unlikely case of a valid container, a decode) —
    /// never a panic — on both strict and forgiving paths.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = decompress::<f32>(&bytes);
        let _ = decompress::<f64>(&bytes);
        let _ = decompress_partial::<f32>(&bytes);
        let _ = decompress_partial::<f64>(&bytes);
    }

    /// Garbage bodies behind a *valid* header and CRC trailer drive the
    /// per-mode body parsers directly (the outer CRC no longer rejects the
    /// input first). Every mode must fail structurally, never panic.
    #[test]
    fn sealed_garbage_bodies_never_panic(
        mode_idx in 0usize..5,
        rows in 1usize..48,
        cols in 1usize..48,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mode = [
            Mode::Quantized,
            Mode::Constant,
            Mode::Raw,
            Mode::LogPointwiseRel,
            Mode::Blocked,
        ][mode_idx];
        let mut container = Vec::new();
        format::write_header(&mut container, "f32", mode, Shape::D2(rows, cols)).unwrap();
        container.extend_from_slice(&body);
        let sealed = seal(container);
        let _ = decompress::<f32>(&sealed);
        let _ = decompress_partial::<f32>(&sealed);
        // A tight output budget must also be honoured without panicking.
        let limits = DecodeLimits { max_output_bytes: 1 << 12 };
        let _ = decompress_with_limits::<f32>(&sealed, 1, &limits);
    }

    /// The lossless-stage decoders sit directly on untrusted container
    /// sections; arbitrary bytes must never panic or overshoot the caps.
    #[test]
    fn lossless_decoders_never_panic_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        if let Ok(raw) = losslesskit::deflate_like::lz_decompress_bounded(&bytes, 1 << 16) {
            prop_assert!(raw.len() <= 1 << 16);
        }
        if let Ok(syms) = losslesskit::range::range_decode_bounded(&bytes, 4096) {
            prop_assert!(syms.len() <= 4096);
        }
        let mut pos = 0usize;
        let _ = losslesskit::HuffmanCodec::read_table(&bytes, &mut pos);
    }
}

// ---------------------------------------------------------------------------
// Resource limits: giant declared headers must be rejected up front.
// ---------------------------------------------------------------------------

/// A header declaring more output than [`DecodeLimits`] allows must be
/// rejected *before* any body parsing or allocation — including the default
/// 1-GiB budget against a terabyte-scale declared shape.
#[test]
fn giant_declared_headers_hit_limits_before_allocation() {
    // 2^20 × 2^20 f32 samples = 4 TiB declared output: within the format's
    // element-count cap, far past the default decode budget.
    let mut container = Vec::new();
    format::write_header(
        &mut container,
        "f32",
        Mode::Quantized,
        Shape::D2(1 << 20, 1 << 20),
    )
    .unwrap();
    let sealed = seal(container);
    match decompress::<f32>(&sealed) {
        Err(SzError::Decode(DecodeError::LimitExceeded { stage, what, .. })) => {
            assert_eq!(stage, "header");
            assert_eq!(what, "output bytes");
        }
        other => panic!("expected LimitExceeded, got {other:?}"),
    }

    // The same guard honours a caller-supplied budget: 1000 f32 samples
    // (4000 bytes) against a 1-KiB cap.
    let mut small = Vec::new();
    format::write_header(&mut small, "f32", Mode::Quantized, Shape::D1(1000)).unwrap();
    let sealed = seal(small);
    let limits = DecodeLimits { max_output_bytes: 1 << 10 };
    match decompress_with_limits::<f32>(&sealed, 1, &limits) {
        Err(SzError::Decode(DecodeError::LimitExceeded { what, requested, limit, .. })) => {
            assert_eq!(what, "output bytes");
            assert_eq!(requested, 4000);
            assert_eq!(limit, 1 << 10);
        }
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Acceptance: single-block corruption on a v2 blocked container.
// ---------------------------------------------------------------------------

/// Corrupting exactly one block payload of a v2 blocked container must
/// recover every other block bit-exactly, NaN-fill the damaged range, and
/// report the damaged block's index.
#[test]
fn one_corrupt_block_recovers_all_others() {
    let set = golden_set();
    let g = set.iter().find(|g| g.name == "blocked_f64_3d").unwrap();
    let bytes = g.compress();
    let (pristine, rep0) = decompress_partial::<f64>(&bytes).unwrap();
    assert!(rep0.is_clean());
    assert!(rep0.n_blocks > 1, "fixture must be multi-block");

    // Walk forward from 60% of the container (deep in the payload region)
    // until a flip lands inside exactly one block payload.
    let mut checked = None;
    for idx in (bytes.len() * 6 / 10)..bytes.len().saturating_sub(4) {
        let flipped = flip_bit(&bytes, idx, 3);
        if let Ok((field, rep)) = decompress_partial::<f64>(&flipped) {
            if rep.damaged.len() == 1 {
                checked = Some((field, rep, idx));
                break;
            }
        }
    }
    let (field, rep, idx) = checked.expect("no flip offset landed in a single block payload");

    let d = &rep.damaged[0];
    assert!(d.index < rep.n_blocks, "damaged index out of range");
    assert!(!d.sample_range.is_empty());
    assert_eq!(
        rep.recovered_samples,
        pristine.shape().len() - d.sample_range.len(),
        "recovered-sample count inconsistent with the damage range"
    );
    assert!(!rep.is_clean());

    for (i, (&a, &b)) in pristine.as_slice().iter().zip(field.as_slice()).enumerate() {
        if d.sample_range.contains(&i) {
            assert!(b.is_nan(), "damaged sample {i} not NaN-filled");
        } else {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "intact sample {i} not recovered bit-exactly (flip at byte {idx})"
            );
        }
    }

    // The strict path must refuse the damaged container outright.
    assert!(decompress::<f64>(&flip_bit(&bytes, idx, 3)).is_err());
}

// ---------------------------------------------------------------------------
// v5 mixed-predictor containers: the predictor prefix is untrusted too.
// ---------------------------------------------------------------------------

/// Patch the outer container CRC trailer so tampered bytes get past the
/// whole-container integrity check and into the per-block machinery.
fn fix_outer_crc(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

/// The grain field compressed as a v5 container with stored (no-lossless)
/// payloads, so per-block predictor prefixes sit at known offsets.
fn grain_v5_stored() -> Vec<u8> {
    let cfg = szlike::SzConfig::new(szlike::ErrorBound::Abs(1e-3))
        .with_block_rows(16)
        .with_lossless(szlike::LosslessBackend::None)
        .with_predictor(szlike::PredictorKind::Auto);
    szlike::compress(&grain_field(), &cfg).expect("grain compresses")
}

/// Byte offset where the payload region starts (table payload first, then
/// block payloads in directory order), plus each section's offset/length,
/// derived from the structural inspector rather than private parsers.
fn section_offsets(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let info = szlike::inspect_sections(bytes).expect("sections parse");
    let total: usize = info.sections.iter().map(|s| s.comp_len).sum();
    let mut off = bytes.len() - 4 - total;
    let mut out = Vec::new();
    for s in &info.sections {
        out.push((s.name.clone(), off, s.comp_len));
        off += s.comp_len;
    }
    out
}

/// Bit-flipping the regression-coefficient bytes of one v5 block payload
/// must NaN-fill exactly that block and recover every other block
/// bit-exactly — the coefficient prefix lives inside the per-block CRC,
/// so hostile coefficients read as block damage, never as a panic or as
/// silently wrong samples elsewhere.
#[test]
fn v5_flipped_regression_coefficients_nan_fill_one_block() {
    let bytes = grain_v5_stored();
    let (pristine, rep0) = decompress_partial::<f32>(&bytes).unwrap();
    assert!(rep0.is_clean());
    let names = szlike::inspect_block_predictors(&bytes)
        .unwrap()
        .expect("v5 container");
    let reg_block = names
        .iter()
        .position(|n| n == "regression")
        .expect("grain fixture has a regression block");
    let sections = section_offsets(&bytes);
    let (_, off, len) = sections
        .iter()
        .filter(|(name, _, _)| name.starts_with("block"))
        .nth(reg_block)
        .expect("regression block section");
    assert!(*len > 17, "stored payload holds tag + 16 coefficient bytes");
    // Flip a bit inside the coefficient bytes (offsets 1..17 of the body).
    for coeff_byte in [1usize, 8, 16] {
        let mut dam = bytes.clone();
        dam[off + coeff_byte] ^= 0x40;
        fix_outer_crc(&mut dam);
        assert!(decompress::<f32>(&dam).is_err(), "strict decode accepted");
        let (field, rep) = decompress_partial::<f32>(&dam).expect("partial decode");
        assert_eq!(rep.damaged.len(), 1, "expected exactly one damaged block");
        let d = &rep.damaged[0];
        assert_eq!(d.index, reg_block);
        for (i, (&a, &b)) in pristine.as_slice().iter().zip(field.as_slice()).enumerate() {
            if d.sample_range.contains(&i) {
                assert!(b.is_nan(), "damaged sample {i} not NaN-filled");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "intact sample {i} diverged");
            }
        }
    }
}

/// A hostile per-block predictor tag that is *CRC-consistent* (the
/// attacker recomputed the per-block CRC, the meta CRC, and the outer
/// trailer) must still read as block damage: the tag parser rejects
/// unknown tags and the decoder NaN-fills that block without panicking.
#[test]
fn v5_hostile_predictor_tags_read_as_block_damage() {
    let bytes = grain_v5_stored();
    let (pristine, _) = decompress_partial::<f32>(&bytes).unwrap();
    let sections = section_offsets(&bytes);
    let blocks: Vec<&(String, usize, usize)> = sections
        .iter()
        .filter(|(name, _, _)| name.starts_with("block"))
        .collect();
    let total: usize = sections.iter().map(|(_, _, l)| l).sum();
    let payload_start = bytes.len() - 4 - total;
    let meta_crc_at = payload_start - 4;
    // Tags outside every PredictorModel: 0 (Auto is never stored), 7, 0xEE.
    for hostile in [0u8, 7, 0xEE] {
        let (_, off, len) = blocks[blocks.len() - 1];
        let mut dam = bytes.clone();
        let old_crc = crc32(&bytes[*off..off + len]).to_le_bytes();
        dam[*off] = hostile;
        let new_crc = crc32(&dam[*off..off + len]).to_le_bytes();
        // Rewrite the block's directory descriptor CRC (it is the only
        // occurrence of the old payload CRC in the meta region).
        let meta = &dam[..meta_crc_at];
        let hits: Vec<usize> = (0..meta.len().saturating_sub(3))
            .filter(|&i| dam[i..i + 4] == old_crc)
            .collect();
        assert_eq!(hits.len(), 1, "payload CRC not unique in directory");
        dam[hits[0]..hits[0] + 4].copy_from_slice(&new_crc);
        let meta_crc = crc32(&dam[..meta_crc_at]).to_le_bytes();
        dam[meta_crc_at..payload_start].copy_from_slice(&meta_crc);
        fix_outer_crc(&mut dam);
        // Fully CRC-consistent container with a hostile tag: the strict
        // path must refuse it, the forgiving path must NaN-fill the block.
        assert!(
            decompress::<f32>(&dam).is_err(),
            "strict decode accepted hostile tag {hostile}"
        );
        let (field, rep) = decompress_partial::<f32>(&dam).expect("partial decode");
        assert_eq!(rep.damaged.len(), 1, "tag {hostile}: expected one damaged block");
        let d = &rep.damaged[0];
        assert_eq!(d.index, blocks.len() - 1);
        for (i, (&a, &b)) in pristine.as_slice().iter().zip(field.as_slice()).enumerate() {
            if d.sample_range.contains(&i) {
                assert!(b.is_nan(), "tag {hostile}: damaged sample {i} not NaN-filled");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "tag {hostile}: sample {i} diverged");
            }
        }
        // The predictor-map inspector must also survive the hostile tag,
        // labelling it rather than erroring (the payload CRC matches).
        let names = szlike::inspect_block_predictors(&dam)
            .expect("inspector must not error on hostile tags")
            .expect("still a v5 container");
        assert_eq!(
            names.last().map(String::as_str),
            Some(format!("unknown({hostile})").as_str())
        );
    }
}

/// Truncations of the mixed-predictor (v5) fixtures fail cleanly at every
/// prefix, exactly like the legacy fixtures: the per-block predictor
/// prefix adds parse states but no panics.
#[test]
fn v5_truncations_at_every_prefix_fail_cleanly() {
    for g in mixed_golden_set() {
        let bytes = g.compress();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            assert!(
                !strict_decode_ok(&g, prefix),
                "{}: strict decode accepted a {cut}-byte prefix",
                g.name
            );
            if let Ok(rep) = partial_report(&g, prefix) {
                assert!(
                    !rep.is_clean(),
                    "{}: partial decode reported a {cut}-byte prefix as clean",
                    g.name
                );
            }
        }
    }
}

proptest! {
    /// Single-bit flips of v5 mixed-predictor containers are always
    /// detected, like the legacy golden set.
    #[test]
    fn v5_single_bit_flips_are_always_detected(
        fixture in 0usize..5,
        pos01 in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let set = mixed_golden_set();
        let g = &set[fixture % set.len()];
        let bytes = g.compress();
        let idx = ((pos01 * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let flipped = flip_bit(&bytes, idx, bit);
        prop_assert!(
            !strict_decode_ok(g, &flipped),
            "{}: strict decode accepted a bit flip at byte {idx} bit {bit}",
            g.name
        );
        if let Ok(rep) = partial_report(g, &flipped) {
            prop_assert!(
                !rep.is_clean(),
                "{}: partial decode reported bit flip at byte {idx} as clean",
                g.name
            );
        }
    }
}

/// A flip confined to the outer CRC trailer loses no data: every block
/// decodes bit-exactly, and only `container_crc_ok` records the damage.
#[test]
fn trailer_flip_loses_no_data() {
    let set = golden_set();
    let g = set.iter().find(|g| g.name == "blocked_f32_2d").unwrap();
    let bytes = g.compress();
    let (pristine, _) = decompress_partial::<f32>(&bytes).unwrap();
    let flipped = flip_bit(&bytes, bytes.len() - 1, 0);
    let (field, rep) = decompress_partial::<f32>(&flipped).unwrap();
    assert!(!rep.container_crc_ok);
    assert!(rep.damaged.is_empty());
    assert!(!rep.is_clean());
    assert_eq!(rep.recovered_samples, pristine.shape().len());
    for (&a, &b) in pristine.as_slice().iter().zip(field.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
