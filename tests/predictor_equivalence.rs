//! Adversarial predictor-equivalence suite: every predictor, every rank,
//! every decode path.
//!
//! The per-block predictor framework (v5 containers) moves the choice of
//! prediction stage into a per-block cost bake-off. These properties pin
//! the invariants that must survive that flexibility:
//!
//! 1. The hard error bound `|x − x̃| ≤ eb` holds for every finite sample
//!    under *every* predictor at every rank — Theorem 1 is per block and
//!    predictor-agnostic.
//! 2. An `auto` container decodes bit-identically through the strict
//!    decoder, the forgiving partial decoder, and `SzStore::read_region`:
//!    all three must replay the exact predictor the encoder chose.
//! 3. Forcing each predictor on mixed-texture corpora round-trips.
//! 4. Container bytes never depend on the thread count, even when blocks
//!    pick different predictors (selection runs inside the per-block task
//!    from the block's own samples — deterministic by construction).
//! 5. Fused and reference kernels produce identical containers for every
//!    predictor (the kernel oracle).

mod common;

use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use proptest::prelude::*;
use szlike::{KernelMode, PredictorKind, Region, SzStore};

/// Every selectable predictor, including the cost-driven bake-off.
const KINDS: [PredictorKind; 5] = [
    PredictorKind::Lorenzo1,
    PredictorKind::Lorenzo2,
    PredictorKind::Regression,
    PredictorKind::Spline,
    PredictorKind::Auto,
];

fn hash01(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z >> 44) as f64) * (1.0 / (1u64 << 20) as f64)
}

/// Deterministic mixed-texture sample: a plane, a quadratic, and hashed
/// noise, with weights drawn from the seed so different cases exercise
/// different winning predictors.
fn textured_sample(lin: usize, dims: &[usize], seed: u64) -> f32 {
    let mut rest = lin;
    let mut plane = 0.0;
    let mut quad = 0.0;
    for (axis, &d) in dims.iter().enumerate().rev() {
        let c = (rest % d) as f64;
        rest /= d;
        plane += c * (0.5 / (axis + 1) as f64);
        if axis == dims.len() - 1 {
            quad = c * c * (1.0 / 64.0);
        }
    }
    let w_noise = hash01(seed);
    let w_quad = hash01(seed ^ 0xA5A5);
    (plane + w_quad * quad + w_noise * hash01(seed ^ lin as u64) * 2.0) as f32
}

fn textured_field(shape: Shape, seed: u64) -> Field<f32> {
    let dims = shape.dims();
    Field::from_fn_linear(shape, |lin| textured_sample(lin, &dims, seed))
}

fn shape_for(rank: usize, n: usize) -> Shape {
    match rank {
        1 => Shape::D1(n * n * 8),
        2 => Shape::D2(n * 2, n * 4),
        _ => Shape::D3(n, n, n * 2),
    }
}

fn bits_of(field: &Field<f32>) -> Vec<u32> {
    field.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    // Default 64 cases; the CI predictor-smoke job raises PROPTEST_CASES.

    /// (1) + (3): the absolute bound is a hard guarantee for every
    /// predictor — forced or auto-selected — at every rank, on mixed
    /// textures, through the monolithic path.
    #[test]
    fn every_predictor_honors_bound_at_every_rank(
        kind_idx in 0usize..5,
        rank in 1usize..=3,
        n in 4usize..9,
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
    ) {
        let kind = KINDS[kind_idx];
        let eb = 10.0f64.powi(eb_exp);
        let field = textured_field(shape_for(rank, n), seed);
        let cfg = SzConfig::new(ErrorBound::Abs(eb)).with_predictor(kind);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let back: Field<f32> = sz::decompress(&bytes).unwrap();
        for (idx, (&x, &y)) in field.as_slice().iter().zip(back.as_slice()).enumerate() {
            prop_assert!(
                ((x - y).abs() as f64) <= eb * (1.0 + 1e-12),
                "{kind:?} rank {rank}: sample {idx} x={x} y={y} eb={eb}"
            );
        }
    }

    /// (1) + (3) on the blocked path: forced predictors and auto both
    /// honor the bound when the field is split into per-block walks.
    #[test]
    fn blocked_path_honors_bound_for_every_predictor(
        kind_idx in 0usize..5,
        seed in any::<u64>(),
        block_rows in 3usize..17,
    ) {
        let kind = KINDS[kind_idx];
        let field = textured_field(Shape::D2(48, 40), seed);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(block_rows)
            .with_predictor(kind);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let back: Field<f32> = sz::decompress(&bytes).unwrap();
        let pw = PointwiseError::between(&field, &back);
        prop_assert!(pw.respects_abs_bound(1e-3 * (1.0 + 1e-12)), "{kind:?}");
    }

    /// (2): an auto-selected blocked container decodes to the same bits
    /// through strict decompress, the forgiving partial decoder, and a
    /// whole-domain `SzStore` region read.
    #[test]
    fn auto_containers_decode_identically_on_every_path(
        seed in any::<u64>(),
        grid in proptest::bool::ANY,
    ) {
        let field = textured_field(Shape::D2(40, 36), seed);
        let cfg = if grid {
            SzConfig::new(ErrorBound::Abs(1e-3))
                .with_chunk_dims([16, 12, 0])
                .with_predictor(PredictorKind::Auto)
        } else {
            SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(2)
                .with_block_rows(10)
                .with_predictor(PredictorKind::Auto)
        };
        let bytes = sz::compress(&field, &cfg).unwrap();
        let strict: Field<f32> = sz::decompress(&bytes).unwrap();
        let (partial, report) = sz::decompress_partial::<f32>(&bytes).unwrap();
        prop_assert!(report.is_clean());
        prop_assert_eq!(bits_of(&strict), bits_of(&partial));
        let store = SzStore::<f32>::open(&bytes).unwrap();
        let region = Region::new(&[0..40, 0..36]).unwrap();
        let from_store = store.read_region(&region).unwrap();
        prop_assert_eq!(bits_of(&strict), bits_of(&from_store));
    }

    /// (2) narrowed: sub-regions of a mixed-predictor grid decode to the
    /// same samples the full strict decode produced at those coordinates —
    /// `read_region` must replay each intersecting block's own predictor.
    #[test]
    fn region_reads_match_strict_decode_on_mixed_grids(
        seed in any::<u64>(),
        r0 in 0usize..24, rl in 1usize..16,
        c0 in 0usize..20, cl in 1usize..16,
    ) {
        let field = textured_field(Shape::D2(40, 36), seed);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_chunk_dims([8, 12, 0])
            .with_predictor(PredictorKind::Auto);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let strict: Field<f32> = sz::decompress(&bytes).unwrap();
        let (r1, c1) = ((r0 + rl).min(40), (c0 + cl).min(36));
        let region = Region::new(&[r0..r1, c0..c1]).unwrap();
        let store = SzStore::<f32>::open(&bytes).unwrap();
        let got = store.read_region(&region).unwrap();
        let mut k = 0;
        for i in r0..r1 {
            for j in c0..c1 {
                let want = strict.as_slice()[i * 36 + j];
                prop_assert_eq!(want.to_bits(), got.as_slice()[k].to_bits());
                k += 1;
            }
        }
    }

    /// (4): container bytes never depend on the thread count, even with
    /// mixed per-block predictor selection.
    #[test]
    fn thread_count_never_changes_mixed_predictor_bytes(
        kind_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let kind = KINDS[kind_idx];
        let field = textured_field(Shape::D2(48, 32), seed);
        let base = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_block_rows(8)
            .with_predictor(kind);
        let two = sz::compress(&field, &base.with_threads(2)).unwrap();
        let four = sz::compress(&field, &base.with_threads(4)).unwrap();
        prop_assert_eq!(two, four);
    }

    /// (5): the fused and reference kernels are bit-identical oracles of
    /// each other for every predictor, monolithic and blocked.
    #[test]
    fn fused_and_reference_kernels_produce_identical_containers(
        kind_idx in 0usize..5,
        seed in any::<u64>(),
        blocked in proptest::bool::ANY,
    ) {
        let kind = KINDS[kind_idx];
        let field = textured_field(Shape::D2(32, 28), seed);
        let mut cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_predictor(kind);
        if blocked {
            cfg = cfg.with_threads(2).with_block_rows(8);
        }
        let fused = sz::compress(&field, &cfg.with_kernel(KernelMode::Fused)).unwrap();
        let reference = sz::compress(&field, &cfg.with_kernel(KernelMode::Reference)).unwrap();
        prop_assert_eq!(fused, reference);
    }

    /// (6): containers and decoded bits are identical at every
    /// `FPSNR_SIMD` dispatch level, for every predictor, monolithic and
    /// blocked — the byte-identity contract of the SIMD layer.
    #[test]
    fn simd_levels_produce_identical_containers_for_every_predictor(
        kind_idx in 0usize..5,
        seed in any::<u64>(),
        rank in 1usize..4,
        n in 8usize..14,
        blocked in proptest::bool::ANY,
    ) {
        use losslesskit::simd::{self, SimdLevel};
        let kind = KINDS[kind_idx];
        let field = textured_field(shape_for(rank, n), seed);
        let mut cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_predictor(kind);
        if blocked {
            cfg = cfg.with_block_rows(8);
        }
        simd::force(Some(SimdLevel::Off));
        let baseline = sz::compress(&field, &cfg).unwrap();
        let base_dec: Field<f32> = sz::decompress(&baseline).unwrap();
        for &level in SimdLevel::ALL.iter().filter(|&&l| l <= simd::detect()) {
            simd::force(Some(level));
            let bytes = sz::compress(&field, &cfg).unwrap();
            let dec: Field<f32> = sz::decompress(&bytes).unwrap();
            simd::force(None);
            prop_assert!(bytes == baseline, "{:?} container bytes differ at {:?}", kind, level);
            prop_assert!(
                bits_of(&dec) == bits_of(&base_dec),
                "{:?} decoded bits differ at {:?}",
                kind,
                level
            );
        }
        simd::force(None);
    }
}

/// Forcing each predictor on the two-texture grain field round-trips
/// within the bound, and `auto` never produces a larger container than
/// the *worst* forced predictor (it is an argmin over per-block costs;
/// per-block estimation noise keeps it from always beating the best).
#[test]
fn forced_predictors_roundtrip_grain_and_auto_is_not_worst() {
    let field = textured_field(Shape::D2(64, 48), 7);
    let mut sizes = Vec::new();
    for kind in KINDS {
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(16)
            .with_predictor(kind);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let back: Field<f32> = sz::decompress(&bytes).unwrap();
        let pw = PointwiseError::between(&field, &back);
        assert!(pw.respects_abs_bound(1e-3 * (1.0 + 1e-12)), "{kind:?}");
        sizes.push((kind, bytes.len()));
    }
    let auto = sizes
        .iter()
        .find(|(k, _)| *k == PredictorKind::Auto)
        .unwrap()
        .1;
    let worst_forced = sizes
        .iter()
        .filter(|(k, _)| *k != PredictorKind::Auto)
        .map(|&(_, s)| s)
        .max()
        .unwrap();
    assert!(
        auto <= worst_forced,
        "auto ({auto} bytes) lost to the worst forced predictor ({worst_forced} bytes): {sizes:?}"
    );
}

/// Rank sweep with forced predictors through the blocked path: 1-D, 2-D
/// and 3-D all round-trip (the spline stencil falls back to Lorenzo for
/// in-row indices < 3, regression fits per-block hyperplanes per rank).
#[test]
fn forced_predictors_roundtrip_every_rank_blocked() {
    for rank in 1..=3 {
        let field = textured_field(shape_for(rank, 6), 99 + rank as u64);
        for kind in KINDS {
            let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(2)
                .with_block_rows(4)
                .with_predictor(kind);
            let bytes = sz::compress(&field, &cfg).unwrap();
            let back: Field<f32> = sz::decompress(&bytes).unwrap();
            let pw = PointwiseError::between(&field, &back);
            assert!(
                pw.respects_abs_bound(1e-3 * (1.0 + 1e-12)),
                "{kind:?} rank {rank}"
            );
        }
    }
}

/// f64 fields go through the same per-block machinery.
#[test]
fn f64_auto_roundtrips_and_paths_agree() {
    let dims = [24usize, 20, 16];
    let field = Field::from_fn_linear(Shape::D3(24, 20, 16), |lin| {
        textured_sample(lin, &dims, 4242) as f64
    });
    let cfg = SzConfig::new(ErrorBound::Abs(1e-6))
        .with_chunk_dims([8, 8, 8])
        .with_predictor(PredictorKind::Auto);
    let bytes = sz::compress(&field, &cfg).unwrap();
    let strict: Field<f64> = sz::decompress(&bytes).unwrap();
    let pw = PointwiseError::between(&field, &strict);
    assert!(pw.respects_abs_bound(1e-6 * (1.0 + 1e-12)));
    let (partial, report) = sz::decompress_partial::<f64>(&bytes).unwrap();
    assert!(report.is_clean());
    assert_eq!(
        strict.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        partial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    let store = SzStore::<f64>::open(&bytes).unwrap();
    let region = Region::new(&[0..24, 0..20, 0..16]).unwrap();
    let got = store.read_region(&region).unwrap();
    assert_eq!(
        strict.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
