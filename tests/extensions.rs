//! Integration tests for the extension features: slab-parallel streams,
//! embedded (fixed-rate/precision) coding, entropy/escape/predictor
//! variants, and the SSIM metric — all driven through the public umbrella
//! API on the synthetic data sets.

use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::metrics::ssim::ssim_2d;
use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use fixed_psnr::transform::{embedded_compress, embedded_decompress, EmbeddedConfig};

fn atm_field(name: &str) -> Field<f32> {
    generate(DatasetId::Atm, Resolution::Small, 77)
        .into_iter()
        .find(|nf| nf.name == name)
        .expect("field exists")
        .data
}

#[test]
fn slab_fixed_psnr_on_hurricane_volume() {
    let nf = generate(DatasetId::Hurricane, Resolution::Small, 77)
        .into_iter()
        .find(|nf| nf.name == "P")
        .unwrap();
    let bytes = compress_slabs_fixed_psnr(&nf.data, 70.0, 5, 4).expect("compress");
    let back: Field<f32> = decompress_slabs(&bytes, 4).expect("decompress");
    let psnr = Distortion::between(&nf.data, &back).psnr();
    assert!((psnr - 70.0).abs() < 5.0, "achieved {psnr}");
}

#[test]
fn embedded_fixed_rate_hits_exact_size_on_real_like_data() {
    // A near-zero-mean wind field: embedded coding spends its planes on
    // structure rather than a large DC offset (fields with mean ≫ range,
    // like TS in Kelvin, need several extra bits/value before the PSNR —
    // which is range-relative — becomes meaningful; that is a real property
    // of fixed-rate coding, not a bug).
    let field = atm_field("U850");
    for bpv in [4.0f64, 8.0] {
        let bytes = embedded_compress(&field, &EmbeddedConfig::fixed_rate(bpv)).unwrap();
        let payload_bits_per_value = bytes.len() as f64 * 8.0 / field.len() as f64;
        // Within 15% of the nominal rate (header + edge-block padding).
        assert!(
            (payload_bits_per_value - bpv).abs() / bpv < 0.15,
            "rate {bpv}: measured {payload_bits_per_value}"
        );
        let back: Field<f32> = embedded_decompress(&bytes).unwrap();
        let psnr = Distortion::between(&field, &back).psnr();
        assert!(psnr > 15.0, "rate {bpv}: psnr {psnr}");
    }
}

#[test]
fn all_entropy_and_escape_variants_respect_bounds_on_atm() {
    use fixed_psnr::sz::{EntropyCoder, EscapeCoding, SzConfig};
    let field = atm_field("CLDHGH");
    let vr = field.value_range();
    let base = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
    let variants = [
        base,
        base.with_entropy(EntropyCoder::Range),
        base.with_escape(EscapeCoding::Truncated).with_quant_bins(32),
        base.with_auto_intervals(true)
            .with_entropy(EntropyCoder::Range),
    ];
    for (k, cfg) in variants.iter().enumerate() {
        let bytes = sz::compress(&field, cfg).expect("compress");
        let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
        let pw = PointwiseError::between(&field, &back);
        assert!(
            pw.respects_abs_bound(1e-3 * vr),
            "variant {k}: max {}",
            pw.max_abs
        );
    }
}

#[test]
fn predictor_variants_roundtrip_on_all_datasets() {
    use fixed_psnr::sz::{PredictorKind, SzConfig};
    for id in DatasetId::ALL {
        let nf = &generate(id, Resolution::Small, 78)[0];
        if nf.data.value_range() == 0.0 {
            continue;
        }
        for kind in [PredictorKind::Lorenzo1, PredictorKind::Lorenzo2, PredictorKind::Auto] {
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_predictor(kind);
            let bytes = sz::compress(&nf.data, &cfg).expect("compress");
            let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
            let pw = PointwiseError::between(&nf.data, &back);
            assert!(
                pw.respects_abs_bound(1e-3 * nf.data.value_range()),
                "{}/{:?}",
                nf.name,
                kind
            );
        }
    }
}

#[test]
fn ssim_tracks_fixed_psnr_quality_ladder() {
    let field = atm_field("TS");
    let mut last = -1.0f64;
    for target in [30.0, 50.0, 70.0, 90.0] {
        let run = compress_fixed_psnr(&field, target, &FixedPsnrOptions::default()).unwrap();
        let back: Field<f32> = sz::decompress(&run.bytes).unwrap();
        let s = ssim_2d(&field, &back, 8);
        assert!(
            s >= last - 1e-6,
            "SSIM not monotone in target: {last} -> {s} at {target} dB"
        );
        last = s;
    }
    assert!(last > 0.999, "90 dB should be structurally near-perfect: {last}");
}

#[test]
fn error_autocorrelation_is_low_at_high_quality() {
    use fixed_psnr::metrics::autocorr::error_autocorrelation;
    let field = atm_field("PS");
    let run = compress_fixed_psnr(&field, 80.0, &FixedPsnrOptions::default()).unwrap();
    let back: Field<f32> = sz::decompress(&run.bytes).unwrap();
    let r1 = error_autocorrelation(&field, &back);
    // SZ-style quantization leaves near-white errors on smooth data.
    assert!(r1.abs() < 0.6, "lag-1 error autocorrelation {r1}");
}

#[test]
fn timeseries_snapshots_compress_consistently() {
    use fixed_psnr::data::timeseries::DriftField;
    let df = DriftField::default();
    let opts = FixedPsnrOptions::default();
    for snap in df.series(4, 0.5) {
        let run = compress_fixed_psnr(&snap, 60.0, &opts).unwrap();
        assert!(
            (run.outcome.achieved_psnr - 60.0).abs() < 4.0,
            "achieved {}",
            run.outcome.achieved_psnr
        );
    }
}
