//! Property-based integration tests (proptest) over the whole stack.

use fixed_psnr::lossless::bakeoff::{self, Backend};
use fixed_psnr::lossless::lz77::Effort;
use fixed_psnr::lossless::{huffman::HuffmanCodec, lz_compress, lz_decompress};
use fixed_psnr::lossless::{freq, mshuf, BitReader, BitWriter};
use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use proptest::prelude::*;

proptest! {
    // Default config: 64 cases, overridable via PROPTEST_CASES (the CI
    // decode-fuzz-smoke job raises it).

    /// The error bound is a hard guarantee for arbitrary finite data.
    #[test]
    fn sz_abs_bound_holds_for_arbitrary_1d_data(
        data in proptest::collection::vec(-1.0e6f32..1.0e6, 2..400),
        eb_exp in -6i32..2,
    ) {
        let eb = 10.0f64.powi(eb_exp);
        let field = Field::from_vec(Shape::D1(data.len()), data);
        let cfg = SzConfig::new(ErrorBound::Abs(eb));
        let bytes = sz::compress(&field, &cfg).unwrap();
        let back: Field<f32> = sz::decompress(&bytes).unwrap();
        for (&x, &y) in field.as_slice().iter().zip(back.as_slice()) {
            prop_assert!(((x - y).abs() as f64) <= eb * (1.0 + 1e-12),
                "x={x} y={y} eb={eb}");
        }
    }

    /// Same for 2-D grids with auto-interval selection.
    #[test]
    fn sz_rel_bound_holds_for_arbitrary_2d_data(
        rows in 2usize..20,
        cols in 2usize..20,
        seed in 0u64..1000,
        auto in proptest::bool::ANY,
    ) {
        let field = Field::from_fn_2d(rows, cols, |i, j| {
            let mut h = seed ^ ((i * 31 + j) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            h ^= h >> 29;
            (h % 10_000) as f32 / 100.0 - 50.0
        });
        let vr = field.value_range();
        prop_assume!(vr > 0.0);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(auto);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let back: Field<f32> = sz::decompress(&bytes).unwrap();
        let pw = PointwiseError::between(&field, &back);
        prop_assert!(pw.respects_abs_bound(1e-3 * vr));
    }

    /// Eq. 7 ↔ Eq. 8 are exact inverses over the whole usable range.
    #[test]
    fn bound_inversion_roundtrips(target in 5.0f64..180.0) {
        let back = psnr_for_ebrel(ebrel_for_psnr(target));
        prop_assert!((back - target).abs() < 1e-8);
    }

    /// The LZ container is identity-preserving on arbitrary bytes.
    #[test]
    fn lz_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let comp = lz_compress(&data);
        prop_assert_eq!(lz_decompress(&comp).unwrap(), data);
    }

    /// Huffman over arbitrary symbol streams from arbitrary alphabets.
    #[test]
    fn huffman_roundtrip_arbitrary_symbols(
        alphabet in 2usize..300,
        raw in proptest::collection::vec(any::<u32>(), 1..2000),
    ) {
        let symbols: Vec<u32> = raw.into_iter().map(|s| s % alphabet as u32).collect();
        let counts = freq::count_dense(&symbols, alphabet);
        let codec = HuffmanCodec::from_counts(&counts);
        let mut w = BitWriter::new();
        codec.encode(&symbols, &mut w);
        let bytes = w.finish();
        // Through table serialization, like the real container.
        let mut table = Vec::new();
        codec.write_table(&mut table);
        let mut pos = 0;
        let codec2 = HuffmanCodec::read_table(&table, &mut pos).unwrap();
        let mut r = BitReader::new(&bytes);
        let mut out = Vec::new();
        codec2.decode(&mut r, symbols.len(), &mut out).unwrap();
        prop_assert_eq!(out, symbols);
    }

    /// Every bake-off backend, forced individually, round-trips arbitrary
    /// bytes.
    #[test]
    fn bakeoff_each_backend_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..6000),
        backend_idx in 0usize..4,
    ) {
        let backend = Backend::ALL[backend_idx];
        let comp = bakeoff::compress_forced(&data, Effort::Default, backend);
        let back = bakeoff::decompress_bounded(&comp, data.len()).unwrap();
        prop_assert_eq!(back.as_ref(), data.as_slice());
    }

    /// The bake-off's own per-chunk choice round-trips arbitrary bytes —
    /// including inputs that mix compressible and incompressible chunks,
    /// so adjacent chunks genuinely pick different backends.
    #[test]
    fn bakeoff_mixed_backends_roundtrip(
        n_runs in 1usize..12,
        seed in any::<u64>(),
    ) {
        // Alternate low-entropy runs with seeded noise: the chunked input
        // exercises stored, Huffman and DEFLATE picks side by side.
        let mut data = Vec::new();
        let mut s = seed | 1;
        let mut next = || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s >> 32) as u8 };
        for _ in 0..n_runs {
            let byte = next();
            let len = 1 + (next() as usize) * 2;
            let noisy = next() & 1 == 0;
            for _ in 0..len {
                let b = if noisy { next() } else { byte };
                data.push(b);
            }
        }
        let comp = bakeoff::compress(&data, Effort::Default);
        let back = bakeoff::decompress_bounded(&comp, data.len()).unwrap();
        prop_assert_eq!(back.as_ref(), data.as_slice());
        // The pick may never beat the stored baseline by losing to it.
        prop_assert!(comp.len() <= data.len() + 32, "inflated past framing");
    }

    /// Interleaved multi-stream Huffman round-trips any symbol stream at
    /// every supported stream count, through table serialization.
    #[test]
    fn mshuf_roundtrip_arbitrary_symbols(
        alphabet in 2usize..300,
        raw in proptest::collection::vec(any::<u32>(), 1..2000),
        n_streams in 1usize..=8,
    ) {
        let symbols: Vec<u32> = raw.into_iter().map(|s| s % alphabet as u32).collect();
        let counts = freq::count_dense(&symbols, alphabet);
        let codec = HuffmanCodec::from_counts(&counts);
        let blob = mshuf::encode(&symbols, &codec, n_streams);
        let mut table = Vec::new();
        codec.write_table(&mut table);
        let mut pos = 0;
        let codec2 = HuffmanCodec::read_table(&table, &mut pos).unwrap();
        let out = mshuf::decode_all(&blob, &codec2, symbols.len()).unwrap();
        prop_assert_eq!(out, symbols);
    }

    /// Decompression never panics on corrupted containers — it returns Err
    /// or (for benign flips in stored values) a well-formed field.
    #[test]
    fn corrupted_containers_fail_cleanly(
        flip_at in 0usize..400,
        flip_bits in 1u8..=255,
    ) {
        let field = Field::from_fn_2d(16, 16, |i, j| (i * 16 + j) as f32);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-2));
        let mut bytes = sz::compress(&field, &cfg).unwrap();
        prop_assume!(flip_at < bytes.len());
        bytes[flip_at] ^= flip_bits;
        // Must not panic; Err or Ok both acceptable.
        let _ = sz::decompress::<f32>(&bytes);
    }

    /// Fixed-PSNR single-pass: achieved PSNR is finite and the container
    /// always decodes, for arbitrary smooth-ish inputs and targets.
    #[test]
    fn fixed_psnr_always_decodable(
        scale in 0.01f32..100.0,
        target in 20.0f64..120.0,
        rows in 4usize..24,
    ) {
        let field = Field::from_fn_2d(rows, rows + 3, |i, j| {
            scale * ((i as f32 * 0.3).sin() + (j as f32 * 0.2).cos())
        });
        let run = compress_fixed_psnr(&field, target, &FixedPsnrOptions::default()).unwrap();
        prop_assert!(run.outcome.achieved_psnr > 0.0);
        let back: Field<f32> = sz::decompress(&run.bytes).unwrap();
        prop_assert_eq!(back.shape(), field.shape());
    }
}
