//! Theorem 1 and Theorem 2 as integration tests: two independent
//! measurement paths must agree on the distortion.

use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::metrics::psnr::mse_slices;
use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use fixed_psnr::transform::codec::theorem2_probe;
use fixed_psnr::transform::TransformConfig;

#[test]
fn theorem1_quantizer_distortion_equals_data_distortion() {
    // MSE(Xpe, X̃pe) measured inside the compressor must equal
    // MSE(X, X̃) measured on the decompressed output.
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 31).into_iter().step_by(5) {
            if nf.data.value_range() == 0.0 {
                continue;
            }
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
            let (pe, pe_recon, _) =
                sz::quantization_probe(&nf.data, &cfg).expect("probe");
            let quant_mse = mse_slices(&pe, &pe_recon);
            let bytes = sz::compress(&nf.data, &cfg).expect("compress");
            let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
            let data_mse = Distortion::between(&nf.data, &back).mse;
            let rel = if quant_mse > 0.0 {
                (quant_mse - data_mse).abs() / quant_mse
            } else {
                data_mse
            };
            assert!(
                rel < 1e-6,
                "{}/{}: quantizer MSE {quant_mse:e} vs data MSE {data_mse:e}",
                id.name(),
                nf.name
            );
        }
    }
}

#[test]
fn theorem1_identity_is_pointwise() {
    // Stronger than the MSE statement: X − X̃ = Xpe − X̃pe sample by sample.
    let nf = &generate(DatasetId::Atm, Resolution::Small, 32)[0]; // CLDHGH
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
    let (pe, pe_recon, _) = sz::quantization_probe(&nf.data, &cfg).expect("probe");
    let bytes = sz::compress(&nf.data, &cfg).expect("compress");
    let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
    for (lin, ((&x, &xt), (e, et))) in nf
        .data
        .as_slice()
        .iter()
        .zip(back.as_slice())
        .zip(pe.iter().zip(&pe_recon))
        .enumerate()
    {
        let lhs = x as f64 - xt as f64;
        let rhs = e - et;
        assert!(
            (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()),
            "sample {lin}: X−X̃ = {lhs} but Xpe−X̃pe = {rhs}"
        );
    }
}

#[test]
fn theorem1_holds_per_block_through_the_blocked_container() {
    // The blocked container runs an independent predictor walk per row
    // slab (sharing only the lossless-stage frequency table, which is
    // exact), so Theorem 1 must hold *block by block*: the quantizer
    // distortion of each slab, probed standalone, must equal the data
    // distortion of that slab's samples in the blocked round trip. An
    // absolute bound keeps every block's δ identical to the probe's —
    // a range-relative bound would resolve against the slab's own range.
    let nf = &generate(DatasetId::Atm, Resolution::Small, 34)[2];
    let field = &nf.data;
    let (rows, cols) = match field.shape() {
        Shape::D2(r, c) => (r, c),
        other => panic!("ATM field expected 2-D, got {other:?}"),
    };
    let eb = 1e-3 * field.value_range();
    let block_rows = 16;
    let cfg = SzConfig::new(ErrorBound::Abs(eb))
        .with_threads(2)
        .with_block_rows(block_rows);
    let bytes = sz::compress(field, &cfg).expect("blocked compress");
    let back: Field<f32> = sz::decompress(&bytes).expect("blocked decompress");
    let probe_cfg = SzConfig::new(ErrorBound::Abs(eb));
    let mut blocks = 0;
    for r0 in (0..rows).step_by(block_rows) {
        let nr = block_rows.min(rows - r0);
        let span = r0 * cols..(r0 + nr) * cols;
        let slab = Field::from_vec(
            Shape::D2(nr, cols),
            field.as_slice()[span.clone()].to_vec(),
        );
        let (pe, pe_recon, _) = sz::quantization_probe(&slab, &probe_cfg).expect("probe");
        let quant_mse = mse_slices(&pe, &pe_recon);
        let data_mse = slab
            .as_slice()
            .iter()
            .zip(&back.as_slice()[span])
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / slab.len() as f64;
        let rel = if quant_mse > 0.0 {
            (quant_mse - data_mse).abs() / quant_mse
        } else {
            data_mse
        };
        assert!(
            rel < 1e-6,
            "{} block at row {r0}: quantizer MSE {quant_mse:e} vs data MSE {data_mse:e}",
            nf.name
        );
        blocks += 1;
    }
    assert!(blocks > 1, "partition degenerated to one block");
}

#[test]
fn theorem2_coefficient_mse_equals_data_mse_on_aligned_grids() {
    // 16x16x16 NYX-like grids are 4-aligned, so no padding asymmetry.
    for nf in generate(DatasetId::Nyx, Resolution::Small, 33) {
        if nf.data.value_range() == 0.0 {
            continue;
        }
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let (coeff_mse, data_mse, n) = theorem2_probe(&nf.data, &cfg).expect("probe");
        assert_eq!(n, nf.data.len(), "padding crept in");
        let rel = if coeff_mse > 0.0 {
            (coeff_mse - data_mse).abs() / coeff_mse
        } else {
            data_mse
        };
        assert!(
            rel < 1e-9,
            "{}: coeff {coeff_mse:e} vs data {data_mse:e}",
            nf.name
        );
    }
}

#[test]
fn eq6_model_tracks_measured_mse_for_wide_error_distributions() {
    // On a textured field whose prediction errors span many bins, the
    // distribution-free model MSE = δ²/12 should match within ~20%.
    let field = Field::from_fn_2d(200, 200, |i, j| {
        ((i as f32 * 0.9).sin() * 7.0 + (j as f32 * 1.1).cos() * 5.0)
            + ((i * j) as f32 * 0.013).sin() * 3.0
    });
    let vr = field.value_range();
    let eb = 1e-3 * vr;
    let cfg = SzConfig::new(ErrorBound::Abs(eb));
    let bytes = fixed_psnr::sz::compress(&field, &cfg).expect("compress");
    let back: Field<f32> = fixed_psnr::sz::decompress(&bytes).expect("decompress");
    let measured = Distortion::between(&field, &back).mse;
    let model = fixed_psnr::core::mse_uniform(2.0 * eb);
    let ratio = measured / model;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "measured/model = {ratio} (measured {measured:e}, model {model:e})"
    );
}

#[test]
fn eq7_predicts_psnr_for_wide_error_distributions() {
    let field = Field::from_fn_3d(20, 24, 28, |i, j, k| {
        ((i * 13 + j * 7 + k * 3) as f32 * 0.37).sin() * 10.0
    });
    let vr = field.value_range();
    let ebrel = 1e-4;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let bytes = fixed_psnr::sz::compress(&field, &cfg).expect("compress");
    let back: Field<f32> = fixed_psnr::sz::decompress(&bytes).expect("decompress");
    let measured = Distortion::between(&field, &back).psnr();
    let predicted = fixed_psnr::core::psnr_sz_estimate(vr, ebrel * vr);
    assert!(
        (measured - predicted).abs() < 1.5,
        "measured {measured} vs Eq.7 {predicted}"
    );
}
