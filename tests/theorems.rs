//! Theorem 1 and Theorem 2 as integration tests: two independent
//! measurement paths must agree on the distortion.

use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::metrics::psnr::mse_slices;
use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use fixed_psnr::transform::codec::theorem2_probe;
use fixed_psnr::transform::TransformConfig;

#[test]
fn theorem1_quantizer_distortion_equals_data_distortion() {
    // MSE(Xpe, X̃pe) measured inside the compressor must equal
    // MSE(X, X̃) measured on the decompressed output.
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 31).into_iter().step_by(5) {
            if nf.data.value_range() == 0.0 {
                continue;
            }
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
            let (pe, pe_recon, _) =
                sz::quantization_probe(&nf.data, &cfg).expect("probe");
            let quant_mse = mse_slices(&pe, &pe_recon);
            let bytes = sz::compress(&nf.data, &cfg).expect("compress");
            let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
            let data_mse = Distortion::between(&nf.data, &back).mse;
            let rel = if quant_mse > 0.0 {
                (quant_mse - data_mse).abs() / quant_mse
            } else {
                data_mse
            };
            assert!(
                rel < 1e-6,
                "{}/{}: quantizer MSE {quant_mse:e} vs data MSE {data_mse:e}",
                id.name(),
                nf.name
            );
        }
    }
}

#[test]
fn theorem1_identity_is_pointwise() {
    // Stronger than the MSE statement: X − X̃ = Xpe − X̃pe sample by sample.
    let nf = &generate(DatasetId::Atm, Resolution::Small, 32)[0]; // CLDHGH
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
    let (pe, pe_recon, _) = sz::quantization_probe(&nf.data, &cfg).expect("probe");
    let bytes = sz::compress(&nf.data, &cfg).expect("compress");
    let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
    for (lin, ((&x, &xt), (e, et))) in nf
        .data
        .as_slice()
        .iter()
        .zip(back.as_slice())
        .zip(pe.iter().zip(&pe_recon))
        .enumerate()
    {
        let lhs = x as f64 - xt as f64;
        let rhs = e - et;
        assert!(
            (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()),
            "sample {lin}: X−X̃ = {lhs} but Xpe−X̃pe = {rhs}"
        );
    }
}

#[test]
fn theorem2_coefficient_mse_equals_data_mse_on_aligned_grids() {
    // 16x16x16 NYX-like grids are 4-aligned, so no padding asymmetry.
    for nf in generate(DatasetId::Nyx, Resolution::Small, 33) {
        if nf.data.value_range() == 0.0 {
            continue;
        }
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let (coeff_mse, data_mse, n) = theorem2_probe(&nf.data, &cfg).expect("probe");
        assert_eq!(n, nf.data.len(), "padding crept in");
        let rel = if coeff_mse > 0.0 {
            (coeff_mse - data_mse).abs() / coeff_mse
        } else {
            data_mse
        };
        assert!(
            rel < 1e-9,
            "{}: coeff {coeff_mse:e} vs data {data_mse:e}",
            nf.name
        );
    }
}

#[test]
fn eq6_model_tracks_measured_mse_for_wide_error_distributions() {
    // On a textured field whose prediction errors span many bins, the
    // distribution-free model MSE = δ²/12 should match within ~20%.
    let field = Field::from_fn_2d(200, 200, |i, j| {
        ((i as f32 * 0.9).sin() * 7.0 + (j as f32 * 1.1).cos() * 5.0)
            + ((i * j) as f32 * 0.013).sin() * 3.0
    });
    let vr = field.value_range();
    let eb = 1e-3 * vr;
    let cfg = SzConfig::new(ErrorBound::Abs(eb));
    let bytes = fixed_psnr::sz::compress(&field, &cfg).expect("compress");
    let back: Field<f32> = fixed_psnr::sz::decompress(&bytes).expect("decompress");
    let measured = Distortion::between(&field, &back).mse;
    let model = fixed_psnr::core::mse_uniform(2.0 * eb);
    let ratio = measured / model;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "measured/model = {ratio} (measured {measured:e}, model {model:e})"
    );
}

#[test]
fn eq7_predicts_psnr_for_wide_error_distributions() {
    let field = Field::from_fn_3d(20, 24, 28, |i, j, k| {
        ((i * 13 + j * 7 + k * 3) as f32 * 0.37).sin() * 10.0
    });
    let vr = field.value_range();
    let ebrel = 1e-4;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let bytes = fixed_psnr::sz::compress(&field, &cfg).expect("compress");
    let back: Field<f32> = fixed_psnr::sz::decompress(&bytes).expect("decompress");
    let measured = Distortion::between(&field, &back).psnr();
    let predicted = fixed_psnr::core::psnr_sz_estimate(vr, ebrel * vr);
    assert!(
        (measured - predicted).abs() < 1.5,
        "measured {measured} vs Eq.7 {predicted}"
    );
}
