//! Container-format integration tests: cross-mode decode dispatch, header
//! integrity, and failure behaviour on malformed inputs.

use fixed_psnr::prelude::*;
use fixed_psnr::sz::{self, format, LosslessBackend};

fn sample_field() -> Field<f32> {
    Field::from_fn_2d(24, 30, |i, j| ((i * 30 + j) as f32 * 0.05).sin() * 4.0)
}

#[test]
fn header_reflects_what_was_compressed() {
    let field = sample_field();
    let bytes = sz::compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let mut pos = 0;
    let header = format::read_header(&bytes, &mut pos).unwrap();
    assert_eq!(header.scalar_tag, "f32");
    assert_eq!(header.shape, field.shape());
    assert_eq!(header.mode, format::Mode::Quantized);
}

#[test]
fn mode_dispatch_covers_all_container_kinds() {
    // Quantized
    let q = sz::compress(&sample_field(), &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    // Constant
    let c = sz::compress(
        &Field::from_vec(Shape::D1(50), vec![2.5f32; 50]),
        &SzConfig::new(ErrorBound::Abs(1e-3)),
    )
    .unwrap();
    // Raw (lossless fallback via Abs(0))
    let r = sz::compress(&sample_field(), &SzConfig::new(ErrorBound::Abs(0.0))).unwrap();
    // LogPointwiseRel
    let l = sz::compress(
        &sample_field().map(|v| v + 10.0),
        &SzConfig::new(ErrorBound::PointwiseRel(1e-3)),
    )
    .unwrap();
    for (bytes, expect) in [
        (&q, format::Mode::Quantized),
        (&c, format::Mode::Constant),
        (&r, format::Mode::Raw),
        (&l, format::Mode::LogPointwiseRel),
    ] {
        let mut pos = 0;
        let header = format::read_header(bytes, &mut pos).unwrap();
        assert_eq!(header.mode, expect);
        let back: Field<f32> = sz::decompress(bytes).unwrap();
        assert!(!back.is_empty());
    }
}

#[test]
fn f64_containers_refuse_f32_decoding_and_vice_versa() {
    let f32_field = sample_field();
    let f64_field = Field::from_fn_2d(8, 8, |i, j| (i + j) as f64);
    let b32 = sz::compress(&f32_field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let b64 = sz::compress(&f64_field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    assert!(sz::decompress::<f64>(&b32).is_err());
    assert!(sz::decompress::<f32>(&b64).is_err());
    assert!(sz::decompress::<f32>(&b32).is_ok());
    assert!(sz::decompress::<f64>(&b64).is_ok());
}

#[test]
fn every_truncation_point_fails_cleanly() {
    let field = sample_field();
    let bytes = sz::compress(&field, &SzConfig::new(ErrorBound::Abs(1e-4))).unwrap();
    // Exhaustive prefix scan: no prefix may decode successfully or panic.
    for cut in 0..bytes.len() {
        let res = sz::decompress::<f32>(&bytes[..cut]);
        assert!(res.is_err(), "prefix of {cut} bytes decoded");
    }
}

#[test]
fn lossless_backend_choice_does_not_change_reconstruction() {
    let field = sample_field();
    let with_lz = SzConfig::new(ErrorBound::Abs(1e-4));
    let without = SzConfig::new(ErrorBound::Abs(1e-4)).with_lossless(LosslessBackend::None);
    let a: Field<f32> = sz::decompress(&sz::compress(&field, &with_lz).unwrap()).unwrap();
    let b: Field<f32> = sz::decompress(&sz::compress(&field, &without).unwrap()).unwrap();
    assert_eq!(a.as_slice(), b.as_slice(), "backend changed the data");
}

#[test]
fn compression_is_deterministic() {
    let field = sample_field();
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(true);
    let a = sz::compress(&field, &cfg).unwrap();
    let b = sz::compress(&field, &cfg).unwrap();
    assert_eq!(a, b, "same input + config must produce identical bytes");
}

#[test]
fn raw_file_io_interoperates_with_codec() {
    use fixed_psnr::field::io;
    let dir = std::env::temp_dir().join("fpsnr_format_test");
    std::fs::create_dir_all(&dir).unwrap();
    let raw_path = dir.join("f.raw");
    let field = sample_field();
    io::write_raw(&field, &raw_path).unwrap();
    let loaded: Field<f32> = io::read_raw(field.shape(), &raw_path).unwrap();
    let bytes = sz::compress(&loaded, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let back: Field<f32> = sz::decompress(&bytes).unwrap();
    let pw = PointwiseError::between(&field, &back);
    assert!(pw.respects_abs_bound(1e-3));
    std::fs::remove_file(raw_path).ok();
}
