//! Container-format integration tests: cross-mode decode dispatch, header
//! integrity, failure behaviour on malformed inputs, and checked-in golden
//! container fixtures proving byte stability and v1/v2→v3 backward compat.

mod common;

use common::{
    current_dir, golden_set, grid_golden_set, mixed_golden_set, v1_dir, v2_dir, Golden,
    GoldenField,
};
use fixed_psnr::prelude::*;
use fixed_psnr::sz::{self, format, LosslessBackend};

fn sample_field() -> Field<f32> {
    Field::from_fn_2d(24, 30, |i, j| ((i * 30 + j) as f32 * 0.05).sin() * 4.0)
}

#[test]
fn header_reflects_what_was_compressed() {
    let field = sample_field();
    let bytes = sz::compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let mut pos = 0;
    let header = format::read_header(&bytes, &mut pos).unwrap();
    assert_eq!(header.scalar_tag, "f32");
    assert_eq!(header.shape, field.shape());
    assert_eq!(header.mode, format::Mode::Quantized);
}

#[test]
fn mode_dispatch_covers_all_container_kinds() {
    // Quantized
    let q = sz::compress(&sample_field(), &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    // Constant
    let c = sz::compress(
        &Field::from_vec(Shape::D1(50), vec![2.5f32; 50]),
        &SzConfig::new(ErrorBound::Abs(1e-3)),
    )
    .unwrap();
    // Raw (lossless fallback via Abs(0))
    let r = sz::compress(&sample_field(), &SzConfig::new(ErrorBound::Abs(0.0))).unwrap();
    // LogPointwiseRel
    let l = sz::compress(
        &sample_field().map(|v| v + 10.0),
        &SzConfig::new(ErrorBound::PointwiseRel(1e-3)),
    )
    .unwrap();
    for (bytes, expect) in [
        (&q, format::Mode::Quantized),
        (&c, format::Mode::Constant),
        (&r, format::Mode::Raw),
        (&l, format::Mode::LogPointwiseRel),
    ] {
        let mut pos = 0;
        let header = format::read_header(bytes, &mut pos).unwrap();
        assert_eq!(header.mode, expect);
        let back: Field<f32> = sz::decompress(bytes).unwrap();
        assert!(!back.is_empty());
    }
}

#[test]
fn f64_containers_refuse_f32_decoding_and_vice_versa() {
    let f32_field = sample_field();
    let f64_field = Field::from_fn_2d(8, 8, |i, j| (i + j) as f64);
    let b32 = sz::compress(&f32_field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let b64 = sz::compress(&f64_field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    assert!(sz::decompress::<f64>(&b32).is_err());
    assert!(sz::decompress::<f32>(&b64).is_err());
    assert!(sz::decompress::<f32>(&b32).is_ok());
    assert!(sz::decompress::<f64>(&b64).is_ok());
}

#[test]
fn every_truncation_point_fails_cleanly() {
    let field = sample_field();
    let bytes = sz::compress(&field, &SzConfig::new(ErrorBound::Abs(1e-4))).unwrap();
    // Exhaustive prefix scan: no prefix may decode successfully or panic.
    for cut in 0..bytes.len() {
        let res = sz::decompress::<f32>(&bytes[..cut]);
        assert!(res.is_err(), "prefix of {cut} bytes decoded");
    }
}

#[test]
fn lossless_backend_choice_does_not_change_reconstruction() {
    let field = sample_field();
    let with_lz = SzConfig::new(ErrorBound::Abs(1e-4));
    let without = SzConfig::new(ErrorBound::Abs(1e-4)).with_lossless(LosslessBackend::None);
    let a: Field<f32> = sz::decompress(&sz::compress(&field, &with_lz).unwrap()).unwrap();
    let b: Field<f32> = sz::decompress(&sz::compress(&field, &without).unwrap()).unwrap();
    assert_eq!(a.as_slice(), b.as_slice(), "backend changed the data");
}

#[test]
fn compression_is_deterministic() {
    let field = sample_field();
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(true);
    let a = sz::compress(&field, &cfg).unwrap();
    let b = sz::compress(&field, &cfg).unwrap();
    assert_eq!(a, b, "same input + config must produce identical bytes");
}

#[test]
fn raw_file_io_interoperates_with_codec() {
    use fixed_psnr::field::io;
    let dir = std::env::temp_dir().join("fpsnr_format_test");
    std::fs::create_dir_all(&dir).unwrap();
    let raw_path = dir.join("f.raw");
    let field = sample_field();
    io::write_raw(&field, &raw_path).unwrap();
    let loaded: Field<f32> = io::read_raw(field.shape(), &raw_path).unwrap();
    let bytes = sz::compress(&loaded, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let back: Field<f32> = sz::decompress(&bytes).unwrap();
    let pw = PointwiseError::between(&field, &back);
    assert!(pw.respects_abs_bound(1e-3));
    std::fs::remove_file(raw_path).ok();
}

// ---------------------------------------------------------------------------
// Golden container fixtures
// ---------------------------------------------------------------------------

fn assert_decodes_within_tol(name: &str, bytes: &[u8], g: &Golden) {
    match &g.field {
        GoldenField::F32(f) => {
            let back: Field<f32> = sz::decompress(bytes)
                .unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
            assert_eq!(back.shape(), f.shape(), "{name}: shape mismatch");
            for (idx, (a, b)) in f.as_slice().iter().zip(back.as_slice()).enumerate() {
                let err = (a - b).abs() as f64;
                assert!(
                    err <= g.max_abs_err,
                    "{name}: sample {idx} error {err} > {}",
                    g.max_abs_err
                );
            }
        }
        GoldenField::F64(f) => {
            let back: Field<f64> = sz::decompress(bytes)
                .unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
            assert_eq!(back.shape(), f.shape(), "{name}: shape mismatch");
            for (idx, (a, b)) in f.as_slice().iter().zip(back.as_slice()).enumerate() {
                let err = (a - b).abs();
                assert!(
                    err <= g.max_abs_err,
                    "{name}: sample {idx} error {err} > {}",
                    g.max_abs_err
                );
            }
        }
    }
}

/// Decode to raw bit patterns so cross-version comparisons are bit-exact.
fn decode_bits(bytes: &[u8], g: &Golden) -> Vec<u64> {
    match &g.field {
        GoldenField::F32(_) => sz::decompress::<f32>(bytes)
            .expect("fixture decodes")
            .as_slice()
            .iter()
            .map(|v| v.to_bits() as u64)
            .collect(),
        GoldenField::F64(_) => sz::decompress::<f64>(bytes)
            .expect("fixture decodes")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    }
}

/// Env-gated fixture writer: set `FPSNR_REGEN_FIXTURES=<dir>` to (re)write
/// the golden containers with the current encoder. A no-op otherwise.
#[test]
fn regenerate_golden_fixtures() {
    let Some(dir) = std::env::var_os("FPSNR_REGEN_FIXTURES") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).unwrap();
    for g in golden_set()
        .iter()
        .chain(grid_golden_set().iter())
        .chain(mixed_golden_set().iter())
    {
        let path = dir.join(format!("{}.szr", g.name));
        std::fs::write(&path, g.compress()).unwrap();
        eprintln!("wrote {}", path.display());
    }
}

/// The current encoder must reproduce every checked-in `current/` fixture
/// byte for byte: any drift is a silent format change.
#[test]
fn current_fixtures_are_byte_stable() {
    for g in golden_set() {
        let path = current_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let fresh = g.compress();
        assert_eq!(
            fresh, frozen,
            "{}: encoder output drifted from checked-in fixture; if the \
             format change is intentional, regenerate via \
             FPSNR_REGEN_FIXTURES=tests/fixtures/current",
            g.name
        );
        assert_decodes_within_tol(g.name, &frozen, &g);
    }
}

/// Every checked-in fixture regenerates byte-for-byte with SIMD forced
/// off AND at the autodetected level: the dispatch layer's byte-identity
/// contract (DESIGN.md §17) holds over the full frozen corpus, so the
/// fixtures double as the dispatch oracle.
#[test]
fn fixtures_are_byte_stable_at_every_simd_level() {
    use losslesskit::simd::{self, SimdLevel};
    for g in golden_set()
        .iter()
        .chain(grid_golden_set().iter())
        .chain(mixed_golden_set().iter())
    {
        let path = current_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        for forced in [Some(SimdLevel::Off), None] {
            simd::force(forced);
            let fresh = g.compress();
            simd::force(None);
            assert_eq!(
                fresh, frozen,
                "{}: encoder output at FPSNR_SIMD={} drifted from checked-in \
                 fixture — the dispatch levels no longer agree byte-for-byte",
                g.name,
                forced.map_or("auto", SimdLevel::name),
            );
        }
    }
}

/// The chunk-grid (v4) fixtures must also be byte-stable: the grid layout
/// is part of the documented format, and its directory order (row-major
/// grid coordinates) and per-axis chunk varints must never drift.
#[test]
fn grid_fixtures_are_byte_stable() {
    for g in grid_golden_set() {
        let path = current_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let fresh = g.compress();
        assert_eq!(
            fresh, frozen,
            "{}: grid encoder output drifted from checked-in fixture; if the \
             format change is intentional, regenerate via \
             FPSNR_REGEN_FIXTURES=tests/fixtures/current",
            g.name
        );
        assert_decodes_within_tol(g.name, &frozen, &g);
    }
}

/// A grid (v4) container must decode to exactly the same samples as a slab
/// container of the same field: the partition changes walk boundaries, not
/// the per-block lossy math, and both layouts replay Theorem 1 per block.
#[test]
fn grid_and_slab_layouts_decode_identically_per_block_math() {
    for g in grid_golden_set() {
        let frozen = std::fs::read(current_dir().join(format!("{}.szr", g.name)))
            .expect("grid fixture");
        let mut pos = 0;
        let header = format::read_header(&frozen, &mut pos).unwrap();
        assert_eq!(header.mode, format::Mode::Blocked, "{}", g.name);
        let fresh = g.compress();
        assert_eq!(
            decode_bits(&frozen, &g),
            decode_bits(&fresh, &g),
            "{}: frozen and fresh grid containers decode differently",
            g.name
        );
    }
}

/// The mixed-predictor (v5) fixtures must be byte-stable: the per-block
/// predictor tag + coefficient prefix, the `0xFF` per-block sentinel, and
/// the cost bake-off's deterministic argmin order are all part of the
/// documented format and must never drift.
#[test]
fn mixed_predictor_fixtures_are_byte_stable() {
    for g in mixed_golden_set() {
        let path = current_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let fresh = g.compress();
        assert_eq!(
            fresh, frozen,
            "{}: mixed-predictor encoder output drifted from checked-in fixture; \
             if the format change is intentional, regenerate via \
             FPSNR_REGEN_FIXTURES=tests/fixtures/current",
            g.name
        );
        assert_decodes_within_tol(g.name, &frozen, &g);
    }
}

/// A v5 container must decode bit-identically through the strict decoder,
/// the forgiving partial decoder, and a whole-domain `SzStore` region
/// read: all three replay the same per-block predictor choices.
#[test]
fn mixed_predictor_fixtures_decode_identically_on_every_path() {
    for g in mixed_golden_set() {
        let path = current_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let mut pos = 0;
        let header = format::read_header(&frozen, &mut pos).unwrap();
        let strict = decode_bits(&frozen, &g);
        match &g.field {
            GoldenField::F32(_) => {
                let (partial, report) =
                    sz::decompress_partial::<f32>(&frozen).expect("partial decode");
                assert!(report.is_clean(), "{}: fixture reported damage", g.name);
                let partial_bits: Vec<u64> = partial
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits() as u64)
                    .collect();
                assert_eq!(strict, partial_bits, "{}: partial path diverged", g.name);
                if header.mode == format::Mode::Blocked {
                    let store = szlike::SzStore::<f32>::open(&frozen).expect("store");
                    let whole: Vec<std::ops::Range<usize>> =
                        header.shape.dims().iter().map(|&d| 0..d).collect();
                    let region = szlike::Region::new(&whole).unwrap();
                    let got = store.read_region(&region).expect("region read");
                    let got_bits: Vec<u64> =
                        got.as_slice().iter().map(|v| v.to_bits() as u64).collect();
                    assert_eq!(strict, got_bits, "{}: region path diverged", g.name);
                }
            }
            GoldenField::F64(_) => {
                let (partial, report) =
                    sz::decompress_partial::<f64>(&frozen).expect("partial decode");
                assert!(report.is_clean(), "{}: fixture reported damage", g.name);
                let partial_bits: Vec<u64> =
                    partial.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(strict, partial_bits, "{}: partial path diverged", g.name);
                if header.mode == format::Mode::Blocked {
                    let store = szlike::SzStore::<f64>::open(&frozen).expect("store");
                    let whole: Vec<std::ops::Range<usize>> =
                        header.shape.dims().iter().map(|&d| 0..d).collect();
                    let region = szlike::Region::new(&whole).unwrap();
                    let got = store.read_region(&region).expect("region read");
                    let got_bits: Vec<u64> =
                        got.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(strict, got_bits, "{}: region path diverged", g.name);
                }
            }
        }
    }
}

/// The two-texture grain fixture must keep carrying genuinely mixed
/// per-block predictor tags: if the cost bake-off collapses to a single
/// choice on it, per-block selection has silently stopped doing its job.
#[test]
fn grain_fixture_carries_mixed_predictor_tags() {
    let frozen = std::fs::read(current_dir().join("mixed_grain_f32_2d.szr"))
        .expect("grain fixture");
    let names = szlike::inspect_block_predictors(&frozen)
        .expect("predictor map parses")
        .expect("grain fixture is a v5 container");
    let mut distinct: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "grain fixture selected only {distinct:?} across {} blocks",
        names.len()
    );
}

/// Frozen v1-era containers must keep decoding (backward compatibility),
/// and must decode to exactly the same samples as a fresh current-version
/// compression of the same field — the lossy math is version-invariant.
#[test]
fn v1_fixtures_decode_backward_compatibly() {
    for g in golden_set() {
        let path = v1_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        assert_decodes_within_tol(g.name, &frozen, &g);
        let fresh = g.compress();
        assert_eq!(
            decode_bits(&frozen, &g),
            decode_bits(&fresh, &g),
            "{}: v1 container and current container decode to different samples",
            g.name
        );
    }
}

/// Frozen v2-era containers (per-section CRC directory, single-stream
/// Huffman stage 0, whole-body DEFLATE flag 1) must keep decoding, and
/// must decode bit-exactly to what the current v3 encoder produces on the
/// same field — the entropy/lossless rework never touches the lossy math.
#[test]
fn v2_fixtures_decode_backward_compatibly() {
    for g in golden_set() {
        let path = v2_dir().join(format!("{}.szr", g.name));
        let frozen = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        assert_decodes_within_tol(g.name, &frozen, &g);
        let fresh = g.compress();
        assert_eq!(
            decode_bits(&frozen, &g),
            decode_bits(&fresh, &g),
            "{}: v2 container and current container decode to different samples",
            g.name
        );
    }
}
