//! Shared deterministic evaluation corpora for the accuracy harnesses.
//!
//! Every sweep-style suite (fixed-PSNR and fixed-ratio) draws its fields
//! from here so all harnesses exercise *identical* data: the registry
//! data sets at one pinned seed, three power-law Gaussian random fields
//! spanning smooth→rough spectra, and one drifting time series. Full
//! determinism (pinned seeds, pinned shapes) is what lets the harnesses
//! assert exact hit-rate floors instead of fuzzy statistical bands.

use fixed_psnr::data::grf::grf_2d;
use fixed_psnr::data::timeseries::DriftField;
use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::prelude::*;

/// Seed shared by every registry sweep (NYX, ATM, Hurricane).
pub const REGISTRY_SEED: u64 = 27;

/// Spectral slopes of the GRF corpus, smooth (3.5) to rough (1.5).
pub const GRF_ALPHAS: [f64; 3] = [1.5, 2.5, 3.5];

/// Base seed for the GRF corpus; field `k` uses `GRF_SEED_BASE + k`.
pub const GRF_SEED_BASE: u64 = 28;

/// All fields of one registry data set at the shared seed, Small tier.
pub fn registry(id: DatasetId) -> Vec<(String, Field<f32>)> {
    generate(id, Resolution::Small, REGISTRY_SEED)
        .into_iter()
        .map(|nf| (nf.name, nf.data))
        .collect()
}

/// The power-law Gaussian-random-field corpus (f64).
pub fn grf() -> Vec<(String, Field<f64>)> {
    GRF_ALPHAS
        .iter()
        .enumerate()
        .map(|(k, &alpha)| {
            (
                format!("grf_a{alpha}"),
                Field::from_vec(
                    Shape::D2(64, 128),
                    grf_2d(64, 128, alpha, GRF_SEED_BASE + k as u64),
                ),
            )
        })
        .collect()
}

/// The drifting time-series corpus (f32 snapshots).
pub fn timeseries() -> Vec<(String, Field<f32>)> {
    DriftField::default()
        .series(6, 0.5)
        .into_iter()
        .enumerate()
        .map(|(k, f)| (format!("ts_{k}"), f))
        .collect()
}
