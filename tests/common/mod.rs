//! Shared test substrate: golden-fixture definitions for the
//! format-stability and decode-hardening suites, plus the deterministic
//! evaluation corpora ([`corpora`]) the accuracy harnesses sweep.
//!
//! Every fixture is a deterministic field (integer-hash noise over dyadic
//! ramps — no trig, so the bytes are reproducible across platforms) plus
//! the exact `SzConfig` it was compressed with. The checked-in container
//! bytes live under `tests/fixtures/`:
//!
//! - `v1/`      — frozen containers produced by the PR-2 era code
//!   (blocked layout version 1). Never regenerated; they prove the current
//!   decoder stays backward-compatible.
//! - `v2/`      — frozen containers produced by the PR-5 era code (blocked
//!   layout version 2: per-section lossless + CRC directory, single-stream
//!   Huffman, whole-body DEFLATE). Never regenerated.
//! - `current/` — containers produced by the current encoder (blocked
//!   layout version 3: interleaved Huffman, per-chunk bake-off).
//!   Regenerated on purposeful format changes via
//!   `FPSNR_REGEN_FIXTURES=tests/fixtures/current cargo test -q --test
//!   format_stability regenerate`.

#![allow(dead_code)]

pub mod corpora;

use ndfield::{Field, Shape};
use szlike::{ErrorBound, PredictorKind, SzConfig};

/// SplitMix64-style hash → dyadic rational in `[0, 1)` (exact in f64, so
/// every fixture sample is bit-deterministic on any platform).
fn hash01(x: usize) -> f64 {
    let mut z = (x as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z >> 44) as f64) * (1.0 / (1u64 << 20) as f64)
}

/// Smooth-ish deterministic sample: dyadic ramp plus hashed noise.
fn sample(lin: usize, dims: &[usize]) -> f64 {
    let mut rest = lin;
    let mut ramp = 0.0;
    for (axis, &d) in dims.iter().enumerate().rev() {
        let coord = rest % d;
        rest /= d;
        ramp += coord as f64 * (0.25 / (axis + 1) as f64);
    }
    ramp + hash01(lin) * 0.5
}

fn field_f32(shape: Shape) -> Field<f32> {
    let dims = shape.dims();
    Field::from_fn_linear(shape, |lin| sample(lin, &dims) as f32)
}

fn field_f64(shape: Shape) -> Field<f64> {
    let dims = shape.dims();
    Field::from_fn_linear(shape, |lin| sample(lin, &dims))
}

/// The scalar-typed payload of one golden fixture.
pub enum GoldenField {
    F32(Field<f32>),
    F64(Field<f64>),
}

/// One golden fixture: a deterministic field plus its exact compression
/// configuration and the absolute error tolerance its decode must meet
/// (`0.0` = bit-exact).
pub struct Golden {
    pub name: &'static str,
    pub field: GoldenField,
    pub cfg: SzConfig,
    pub max_abs_err: f64,
}

impl Golden {
    fn f32(name: &'static str, field: Field<f32>, cfg: SzConfig, tol: f64) -> Self {
        Golden {
            name,
            field: GoldenField::F32(field),
            cfg,
            max_abs_err: tol,
        }
    }

    fn f64(name: &'static str, field: Field<f64>, cfg: SzConfig, tol: f64) -> Self {
        Golden {
            name,
            field: GoldenField::F64(field),
            cfg,
            max_abs_err: tol,
        }
    }

    /// Compress this fixture's field with its config (current encoder).
    pub fn compress(&self) -> Vec<u8> {
        match &self.field {
            GoldenField::F32(f) => szlike::compress(f, &self.cfg).expect("fixture compresses"),
            GoldenField::F64(f) => szlike::compress(f, &self.cfg).expect("fixture compresses"),
        }
    }
}

/// The full golden set: monolithic + blocked containers over f32/f64 and
/// ranks 1..=3, plus the constant / raw / log-pointwise-relative modes.
pub fn golden_set() -> Vec<Golden> {
    let mut v = Vec::new();
    // Monolithic quantized, all ranks, both scalars.
    v.push(Golden::f32(
        "mono_f32_1d",
        field_f32(Shape::D1(500)),
        SzConfig::new(ErrorBound::Abs(1e-3)),
        1e-3,
    ));
    v.push(Golden::f64(
        "mono_f64_2d",
        field_f64(Shape::D2(40, 50)),
        SzConfig::new(ErrorBound::Abs(1e-6)),
        1e-6,
    ));
    v.push(Golden::f32(
        "mono_f32_3d",
        field_f32(Shape::D3(12, 13, 14)),
        SzConfig::new(ErrorBound::Abs(1e-3)),
        1e-3,
    ));
    // Raw (lossless) and constant modes.
    v.push(Golden::f64(
        "mono_f64_1d_raw",
        field_f64(Shape::D1(100)),
        SzConfig::new(ErrorBound::Abs(0.0)),
        0.0,
    ));
    v.push(Golden::f32(
        "mono_f32_2d_const",
        Field::from_vec(Shape::D2(10, 10), vec![4.25f32; 100]),
        SzConfig::new(ErrorBound::Abs(1e-3)),
        0.0,
    ));
    // Log pointwise-relative mode (signs, zeros, noise).
    let logrel = Field::from_fn_2d(32, 32, |i, j| {
        let lin = i * 32 + j;
        let mag = (0.5 + hash01(lin)) as f32;
        if lin == 100 {
            0.0
        } else if (i + j) % 5 == 0 {
            -mag
        } else {
            mag
        }
    });
    // Pointwise bound 1e-3: |x| ≤ 1.5 so worst-case absolute error ~1.5e-3.
    v.push(Golden::f32(
        "mono_f32_2d_logrel",
        logrel,
        SzConfig::new(ErrorBound::PointwiseRel(1e-3)),
        1.6e-3,
    ));
    // Blocked containers, all ranks, both scalars.
    v.push(Golden::f32(
        "blocked_f32_1d",
        field_f32(Shape::D1(2000)),
        SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(300),
        1e-3,
    ));
    v.push(Golden::f32(
        "blocked_f32_2d",
        field_f32(Shape::D2(64, 48)),
        SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(16),
        1e-3,
    ));
    v.push(Golden::f64(
        "blocked_f64_2d",
        field_f64(Shape::D2(30, 40)),
        SzConfig::new(ErrorBound::Abs(1e-6))
            .with_threads(2)
            .with_block_rows(7),
        1e-6,
    ));
    v.push(Golden::f32(
        "blocked_f32_3d",
        field_f32(Shape::D3(16, 10, 10)),
        SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(3),
        1e-3,
    ));
    v.push(Golden::f64(
        "blocked_f64_3d",
        field_f64(Shape::D3(20, 16, 12)),
        SzConfig::new(ErrorBound::Abs(1e-6))
            .with_threads(3)
            .with_block_rows(5),
        1e-6,
    ));
    v
}

/// Golden fixtures for the chunk-grid (v4) blocked layout, kept separate
/// from [`golden_set`]: the frozen `v1/` and `v2/` directories predate the
/// grid layout, so the backward-compat sweeps must not expect these names.
/// The `current/` bytes are regenerated together with the main set via
/// `FPSNR_REGEN_FIXTURES`.
pub fn grid_golden_set() -> Vec<Golden> {
    vec![
        Golden::f32(
            "grid_f32_3d",
            field_f32(Shape::D3(24, 20, 16)),
            SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims([8, 8, 8]),
            1e-3,
        ),
        Golden::f64(
            "grid_f64_2d",
            field_f64(Shape::D2(45, 40)),
            SzConfig::new(ErrorBound::Abs(1e-6)).with_chunk_dims([16, 12, 0]),
            1e-6,
        ),
        Golden::f32(
            "grid_f32_1d",
            field_f32(Shape::D1(3000)),
            SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims([512, 0, 0]),
            1e-3,
        ),
    ]
}

/// Golden fixtures for the mixed-predictor (v5) blocked layout and the
/// monolithic predictor-tagged layout, kept separate from [`golden_set`]
/// like [`grid_golden_set`]: the frozen `v1/` and `v2/` directories
/// predate the predictor framework. The `current/` bytes regenerate
/// together with the main set via `FPSNR_REGEN_FIXTURES`.
pub fn mixed_golden_set() -> Vec<Golden> {
    vec![
        // Cost-driven auto selection over a slab-partitioned 2-D field:
        // the per-block bake-off may pick different predictors per block.
        Golden::f32(
            "mixed_auto_f32_2d",
            field_f32(Shape::D2(64, 48)),
            SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(2)
                .with_block_rows(16)
                .with_predictor(PredictorKind::Auto),
            1e-3,
        ),
        // Forced regression over a 3-D chunk grid: every block carries a
        // quantized coefficient payload (tag 3 + 16 bytes).
        Golden::f64(
            "mixed_regression_f64_3d",
            field_f64(Shape::D3(24, 20, 16)),
            SzConfig::new(ErrorBound::Abs(1e-6))
                .with_chunk_dims([8, 8, 8])
                .with_predictor(PredictorKind::Regression),
            1e-6,
        ),
        // Forced spline on a 1-D series (stencil + Lorenzo fallback rows).
        Golden::f32(
            "mixed_spline_f32_1d",
            field_f32(Shape::D1(2000)),
            SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(2)
                .with_block_rows(300)
                .with_predictor(PredictorKind::Spline),
            1e-3,
        ),
        // Monolithic auto: the predictor tag + optional coefficients live
        // in the Quantized (non-blocked) layout.
        Golden::f32(
            "mixed_auto_f32_mono_2d",
            field_f32(Shape::D2(40, 50)),
            SzConfig::new(ErrorBound::Abs(1e-3)).with_predictor(PredictorKind::Auto),
            1e-3,
        ),
        // Two-texture field whose halves favour different predictors, so
        // the frozen container carries genuinely mixed per-block tags.
        Golden::f32(
            "mixed_grain_f32_2d",
            grain_field(),
            SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(2)
                .with_block_rows(16)
                .with_predictor(PredictorKind::Auto),
            1e-3,
        ),
    ]
}

/// Deterministic two-texture field (dyadic arithmetic only): the top half
/// is a plane plus hashed noise (per-block linear regression's natural
/// territory — the noise defeats neighbour-based predictors), the bottom
/// half scales a per-row quadratic by a row-dependent factor (the spline
/// stencil is exact on per-row quadratics while the multiplicative rows
/// defeat Lorenzo²'s separable exactness).
pub fn grain_field() -> Field<f32> {
    Field::from_fn_2d(64, 48, |i, j| {
        if i < 32 {
            (i as f64 * 0.125 + j as f64 * 0.1875 + hash01(i * 48 + j) * 0.5) as f32
        } else {
            ((1.0 + 0.5 * hash01(i)) * (j * j) as f64 * (1.0 / 128.0)) as f32
        }
    })
}

/// Directory of the frozen v1 fixtures.
pub fn v1_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1")
}

/// Directory of the frozen v2 fixtures.
pub fn v2_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2")
}

/// Directory of the current-version fixtures.
pub fn current_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/current")
}
