//! Random-access region reads: `SzStore` must serve any sub-region of any
//! blocked container bit-identically to slicing a full decompress, across
//! layouts (v2/v3 slabs, v4 grids), scalar types, cache pressure, and
//! concurrent readers — and its hit/miss accounting must reconcile exactly.

mod common;

use common::{current_dir, golden_set, grid_golden_set, v2_dir, GoldenField};
use fixed_psnr::prelude::*;
use fixed_psnr::sz::{self, Region, StoreOptions, SzStore};
use proptest::prelude::*;
use std::ops::Range;
use std::sync::Arc;

/// Slice `axes` out of a row-major full field the straightforward way —
/// the oracle every store read is compared against.
fn slice_region<T: Copy>(full: &[T], dims: &[usize], axes: &[Range<usize>]) -> Vec<T> {
    let mut d = [1usize; 3];
    d[..dims.len()].copy_from_slice(dims);
    let mut a: Vec<Range<usize>> = axes.to_vec();
    while a.len() < 3 {
        a.push(0..1);
    }
    let mut out = Vec::new();
    for i in a[0].clone() {
        for j in a[1].clone() {
            for k in a[2].clone() {
                out.push(full[(i * d[1] + j) * d[2] + k]);
            }
        }
    }
    out
}

/// Derive a non-empty sub-range of `0..dim` from two hash words.
fn sub_range(dim: usize, h0: u64, h1: u64) -> Range<usize> {
    let start = (h0 % dim as u64) as usize;
    let len = 1 + (h1 % (dim - start) as u64) as usize;
    start..start + len
}

proptest! {
    /// f32, rank 1–3, random grid: store reads == full-decode slices.
    #[test]
    fn region_reads_match_full_decode_f32(
        rank in 1usize..=3,
        d0 in 4usize..24, d1 in 3usize..16, d2 in 3usize..12,
        c0 in 0usize..10, c1 in 0usize..8, c2 in 0usize..6,
        h0 in any::<u64>(), h1 in any::<u64>(), h2 in any::<u64>(),
        h3 in any::<u64>(), h4 in any::<u64>(), h5 in any::<u64>(),
        seed in 0u64..1000,
    ) {
        let h = [h0, h1, h2, h3, h4, h5];
        let dims = [d0, d1, d2][..rank].to_vec();
        let shape = Shape::from_dims(&dims);
        let field = Field::from_fn_linear(shape, |lin| {
            let mut z = seed ^ (lin as u64).wrapping_mul(0x9E3779B97F4A7C15);
            z ^= z >> 29;
            (z % 4096) as f32 * 0.01 - 20.0
        });
        let mut chunks = [0usize; 3];
        chunks[..rank].copy_from_slice(&[c0, c1, c2][..rank]);
        // All-zero chunk dims select the monolithic (non-blocked) path.
        prop_assume!(chunks != [0; 3]);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims(chunks);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let full: Field<f32> = sz::decompress(&bytes).unwrap();
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        let axes: Vec<Range<usize>> = (0..rank)
            .map(|a| sub_range(dims[a], h[2 * a], h[2 * a + 1]))
            .collect();
        let got = store.read_region(&Region::new(&axes).unwrap()).unwrap();
        let want = slice_region(full.as_slice(), &dims, &axes);
        prop_assert_eq!(got.as_slice().len(), want.len());
        for (a, b) in got.as_slice().iter().zip(&want) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // The fast path really skipped work: a strict sub-region of a
        // multi-block grid must decode strictly fewer than all blocks.
        let s = store.stats();
        prop_assert_eq!(s.block_requests(), s.hits + s.misses);
        prop_assert_eq!(s.blocks_decoded, s.misses);
    }

    /// Same oracle for f64 slab containers (block_rows path, v3 layout).
    #[test]
    fn region_reads_match_full_decode_f64_slab(
        d0 in 6usize..24, d1 in 3usize..14,
        block_rows in 1usize..8,
        h0 in any::<u64>(), h1 in any::<u64>(),
        h2 in any::<u64>(), h3 in any::<u64>(),
        seed in 0u64..1000,
    ) {
        let h = [h0, h1, h2, h3];
        let field = Field::from_fn_2d(d0, d1, |i, j| {
            let mut z = seed ^ ((i * d1 + j) as u64).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^= z >> 31;
            (z % 65536) as f64 * 1e-3
        });
        let cfg = SzConfig::new(ErrorBound::Abs(1e-6))
            .with_threads(2)
            .with_block_rows(block_rows);
        let bytes = sz::compress(&field, &cfg).unwrap();
        let full: Field<f64> = sz::decompress(&bytes).unwrap();
        let store: SzStore<f64> = SzStore::open(&bytes).unwrap();
        let axes = [sub_range(d0, h[0], h[1]), sub_range(d1, h[2], h[3])];
        let got = store.read_region(&Region::new(&axes).unwrap()).unwrap();
        let want = slice_region(full.as_slice(), &[d0, d1], &axes);
        for (a, b) in got.as_slice().iter().zip(&want) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Concurrent readers under cache pressure: the budget is far below the
/// working set, so the store evicts constantly while 8 threads hammer
/// random regions — every read must stay bit-exact and the counters must
/// reconcile exactly afterwards (plus mirror into the fpsnr-obs registry).
#[test]
fn concurrent_readers_under_cache_pressure_reconcile() {
    let dims = [32usize, 24, 20];
    let field = Field::from_fn_3d(dims[0], dims[1], dims[2], |i, j, k| {
        let mut z = ((i * 24 + j) * 20 + k) as u64;
        z = z.wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 27;
        (z % 8192) as f32 * 0.02
    });
    let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims([8, 8, 8]);
    let bytes = sz::compress(&field, &cfg).unwrap();
    let full = Arc::new(sz::decompress::<f32>(&bytes).unwrap());
    // Working set: 4*3*3 = 36 blocks × 8³ f32 = ~72 KiB; budget 16 KiB.
    fpsnr_obs::reset();
    fpsnr_obs::enable();
    let obs_on = fpsnr_obs::is_enabled(); // false when built with fpsnr-obs/off
    let store = Arc::new(
        SzStore::<f32>::open_with(
            bytes,
            StoreOptions {
                cache_budget: 16 * 1024,
                ..StoreOptions::default()
            },
        )
        .unwrap(),
    );
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let store = Arc::clone(&store);
        let full = Arc::clone(&full);
        handles.push(std::thread::spawn(move || {
            let mut h = t.wrapping_mul(0x2545F4914F6CDD1D) + 1;
            let mut next = move || {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                h
            };
            for _ in 0..12 {
                let axes: Vec<Range<usize>> = (0..3)
                    .map(|a| sub_range([32, 24, 20][a], next(), next()))
                    .collect();
                let got = store.read_region(&Region::new(&axes).unwrap()).unwrap();
                let want = slice_region(full.as_slice(), &[32, 24, 20], &axes);
                assert_eq!(got.as_slice().len(), want.len());
                for (a, b) in got.as_slice().iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    fpsnr_obs::disable();
    let s = store.stats();
    // Exact reconciliation: every block request is a hit, a miss (the
    // requester decoded), or a wait (piggybacked on an in-flight decode).
    assert_eq!(s.block_requests(), s.hits + s.misses + s.waits);
    assert_eq!(s.blocks_decoded, s.misses, "a miss is exactly one decode");
    assert_eq!(s.regions, 8 * 12);
    assert!(s.misses >= 36, "each of 36 blocks cold-misses at least once");
    assert!(s.evictions > 0, "16 KiB budget over a 72 KiB working set");
    assert!(s.cached_bytes as usize <= 16 * 1024 + 36 * 2048);
    // The obs registry mirrors the same events 1:1 (≥ because the global
    // registry may also see other stores from parallel tests). With
    // fpsnr-obs/off the probes compile to nothing, so skip the mirror.
    if !obs_on {
        return;
    }
    let report = fpsnr_obs::snapshot();
    for (counter, local) in [
        ("store.cache.hit", s.hits),
        ("store.cache.miss", s.misses),
        ("store.cache.wait", s.waits),
        ("store.cache.evict", s.evictions),
        ("store.decode.blocks", s.blocks_decoded),
        ("store.decode.bytes", s.bytes_decoded),
        ("store.read.regions", s.regions),
        ("store.read.bytes_served", s.bytes_served),
    ] {
        let seen = report.counter(counter).unwrap_or(0);
        assert!(seen >= local, "obs {counter} = {seen} < store's {local}");
    }
}

/// Warm-cache repeats of the same region decode nothing at all.
#[test]
fn warm_cache_repeats_decode_zero_blocks() {
    for g in grid_golden_set() {
        let bytes = g.compress();
        match &g.field {
            GoldenField::F32(f) => assert_warm_zero::<f32>(&bytes, f.shape(), g.name),
            GoldenField::F64(f) => assert_warm_zero::<f64>(&bytes, f.shape(), g.name),
        }
    }
}

fn assert_warm_zero<T: ndfield::Scalar>(bytes: &[u8], shape: Shape, name: &str) {
    let store: SzStore<T> = SzStore::open(bytes).unwrap();
    let dims = shape.dims();
    let axes: Vec<Range<usize>> = dims.iter().map(|&d| d / 4..(3 * d / 4).max(d / 4 + 1)).collect();
    let region = Region::new(&axes).unwrap();
    let first = store.read_region(&region).unwrap();
    let cold = store.stats().blocks_decoded;
    assert!(cold > 0, "{name}: cold read decoded nothing");
    for _ in 0..3 {
        let again = store.read_region(&region).unwrap();
        assert_eq!(first.as_slice(), again.as_slice(), "{name}");
    }
    let s = store.stats();
    assert_eq!(s.blocks_decoded, cold, "{name}: warm repeats decoded blocks");
    assert_eq!(s.misses, cold, "{name}");
    assert!(s.hits >= 3 * cold, "{name}: warm requests were not hits");
}

/// Satellite 6 — cross-version: frozen v2-era and current v3 slab
/// containers (and the checked-in v4 grid fixtures) all round-trip through
/// `SzStore`, bit-identical to their full decode.
#[test]
fn frozen_fixtures_serve_region_reads_across_versions() {
    let blocked: Vec<_> = golden_set()
        .into_iter()
        .filter(|g| g.name.starts_with("blocked_"))
        .collect();
    assert!(!blocked.is_empty());
    for (dir, expect_version) in [(v2_dir(), 2u8), (current_dir(), 3u8)] {
        for g in &blocked {
            let path = dir.join(format!("{}.szr", g.name));
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            match &g.field {
                GoldenField::F32(_) => assert_store_matches::<f32>(&bytes, expect_version, g.name),
                GoldenField::F64(_) => assert_store_matches::<f64>(&bytes, expect_version, g.name),
            }
        }
    }
    for g in grid_golden_set() {
        let path = current_dir().join(format!("{}.szr", g.name));
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        match &g.field {
            GoldenField::F32(_) => assert_store_matches::<f32>(&bytes, 4, g.name),
            GoldenField::F64(_) => assert_store_matches::<f64>(&bytes, 4, g.name),
        }
    }
}

fn assert_store_matches<T: ndfield::Scalar>(bytes: &[u8], expect_version: u8, name: &str) {
    let full: Field<T> = sz::decompress(bytes).unwrap();
    let store: SzStore<T> = SzStore::open(bytes).unwrap();
    assert_eq!(store.version(), expect_version, "{name}");
    let dims = full.shape().dims();
    // The whole field through the store equals the full decode...
    let whole = store
        .read_region(&Region::new(&dims.iter().map(|&d| 0..d).collect::<Vec<_>>()).unwrap())
        .unwrap();
    for (i, (a, b)) in whole.as_slice().iter().zip(full.as_slice()).enumerate() {
        assert_eq!(a.to_bits_u64(), b.to_bits_u64(), "{name}: sample {i}");
    }
    // ...and so do a few deterministic sub-regions.
    for (h0, h1) in [(3u64, 11u64), (17, 5), (29, 31)] {
        let axes: Vec<Range<usize>> = dims
            .iter()
            .map(|&d| sub_range(d, h0.wrapping_mul(d as u64 + 1), h1))
            .collect();
        let got = store.read_region(&Region::new(&axes).unwrap()).unwrap();
        let want = slice_region(full.as_slice(), &dims, &axes);
        for (a, b) in got.as_slice().iter().zip(&want) {
            assert_eq!(a.to_bits_u64(), b.to_bits_u64(), "{name}: region {axes:?}");
        }
    }
}

/// Containers without a per-block directory are rejected with a clear
/// error, not mis-served: monolithic modes and the v1 blocked layout.
#[test]
fn stores_reject_containers_without_directories() {
    let field = Field::from_fn_2d(16, 16, |i, j| (i + j) as f32 * 0.5);
    let mono = sz::compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
    let err = SzStore::<f32>::open(&mono).map(|_| ()).unwrap_err().to_string();
    assert!(err.contains("blocked"), "{err}");
    // Frozen v1-era container: parses as blocked but has no directory.
    let v1 = std::fs::read(common::v1_dir().join("blocked_f32_2d.szr")).unwrap();
    let err = SzStore::<f32>::open(&v1).map(|_| ()).unwrap_err().to_string();
    assert!(err.contains("re-encode"), "{err}");
}
