//! The paper's headline claims, as integration tests over the synthetic
//! evaluation corpus (Small tier for CI speed; the bench binaries rerun the
//! same protocol at full scale).

mod common;

use common::corpora;
use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::prelude::*;

fn dataset(id: DatasetId, seed: u64) -> Vec<(String, Field<f32>)> {
    generate(id, Resolution::Small, seed)
        .into_iter()
        .map(|nf| (nf.name, nf.data))
        .collect()
}

#[test]
fn average_deviation_within_paper_band_on_all_datasets() {
    // Paper abstract: average deviation 0.1 ~ 5.0 dB, largest at the
    // 20 dB target (their Hurricane hits +5.0 with STDEV 6.5 there). Our
    // Small-tier grids amplify the low-target overshoot (sparse
    // hydrometeor fields are almost entirely exactly-predictable), so the
    // 20 dB band gets extra slack; mid/high targets must be tight.
    for id in DatasetId::ALL {
        let fields = dataset(id, 21);
        for (target, band) in [(20.0, 10.0), (60.0, 3.0), (100.0, 3.0)] {
            let (_, summary) = run_batch_summary(
                id.name(),
                &fields,
                target,
                &FixedPsnrOptions::default(),
                4,
            );
            let dev = (summary.avg - target).abs();
            assert!(
                dev <= band,
                "{} @ {target}: AVG {} deviates {dev} (band {band})",
                id.name(),
                summary.avg
            );
        }
    }
}

#[test]
fn deviation_shrinks_as_target_grows() {
    // Paper §V: "the higher the PSNR of demand, the better our fixed-PSNR
    // method performs".
    for id in DatasetId::ALL {
        let fields = dataset(id, 22);
        let dev_at = |target: f64| {
            let (_, s) =
                run_batch_summary(id.name(), &fields, target, &FixedPsnrOptions::default(), 4);
            s.mean_abs_deviation
        };
        let low = dev_at(20.0);
        let high = dev_at(100.0);
        assert!(
            high < low,
            "{}: deviation did not shrink (20 dB: {low}, 100 dB: {high})",
            id.name()
        );
    }
}

#[test]
fn stdev_shrinks_as_target_grows() {
    for id in DatasetId::ALL {
        let fields = dataset(id, 23);
        let stdev_at = |target: f64| {
            let (_, s) =
                run_batch_summary(id.name(), &fields, target, &FixedPsnrOptions::default(), 4);
            s.stdev
        };
        assert!(
            stdev_at(120.0) < stdev_at(20.0),
            "{}: STDEV did not shrink with target",
            id.name()
        );
    }
}

#[test]
fn atm_meets_demand_for_most_fields_at_high_targets() {
    // The Fig. 2 claim, at the tier where it is strongest (80/120 dB).
    let fields = dataset(DatasetId::Atm, 24);
    for target in [80.0, 120.0] {
        let (_, summary) =
            run_batch_summary("ATM", &fields, target, &FixedPsnrOptions::default(), 4);
        assert!(
            summary.meet_rate >= 0.8,
            "meet rate at {target} dB only {:.0}%",
            summary.meet_rate * 100.0
        );
    }
}

#[test]
fn single_shot_matches_paper_workflow() {
    // The production path must be exactly one compression whose container
    // is a plain SZ container (decodable by the stock decoder) with the
    // Eq. 8 bound inside.
    let field = &dataset(DatasetId::Atm, 25)[8].1; // TS
    let run = compress_fixed_psnr(field, 90.0, &FixedPsnrOptions::default()).expect("run");
    assert!((run.derived_ebrel - ebrel_for_psnr(90.0)).abs() < 1e-15);
    let direct: Field<f32> = fixed_psnr::sz::decompress(&run.bytes).expect("stock decoder");
    assert_eq!(direct.shape(), field.shape());
}

/// Run one corpus through the 40–100 dB sweep on a given option set and
/// assert both the dataset-average deviation (paper Table 2 bands) and a
/// per-field undershoot floor.
fn assert_sweep<T: Scalar>(corpus: &str, fields: &[(String, Field<T>)], opts: &FixedPsnrOptions) {
    // 40 dB sits between the paper's loose 20 dB row (their Hurricane
    // deviates +5.0 there) and the tight ≥60 dB rows, so it gets an
    // intermediate band; higher targets must hold the tight band.
    for (target, band) in [(40.0, 6.0), (60.0, 3.0), (80.0, 3.0), (100.0, 3.0)] {
        let (outcomes, summary) = run_batch_summary(corpus, fields, target, opts, 4);
        let dev = (summary.avg - target).abs();
        assert!(
            dev <= band,
            "{corpus} @ {target} dB: AVG {} deviates {dev:.2} (band {band})",
            summary.avg
        );
        for o in &outcomes {
            assert!(
                o.achieved_psnr >= target - 2.0 * band,
                "{corpus}/{} @ {target} dB: achieved only {:.2} dB",
                o.field,
                o.achieved_psnr
            );
        }
    }
}

#[test]
fn sweep_registry_datasets_at_paper_targets() {
    // Every field of every registry data set (NYX, ATM, Hurricane),
    // through the monolithic single-compression path. The corpora come
    // from the shared helper so the fixed-ratio harness sweeps the
    // exact same fields.
    for id in DatasetId::ALL {
        let fields = corpora::registry(id);
        assert_sweep(id.name(), &fields, &FixedPsnrOptions::default());
    }
}

#[test]
fn sweep_registry_datasets_through_blocked_path() {
    // The same sweep through the block-parallel container (auto
    // partition): Theorem 1 holds per block, so accuracy must match the
    // monolithic bands.
    let blocked = FixedPsnrOptions {
        threads: 0,
        ..FixedPsnrOptions::default()
    };
    for id in DatasetId::ALL {
        let fields = corpora::registry(id);
        assert_sweep(id.name(), &fields, &blocked);
    }
}

#[test]
fn sweep_grf_and_timeseries_corpora() {
    // The two non-registry generators: power-law Gaussian random fields
    // (f64, spanning smooth to rough spectra) and a drifting time series
    // (f32 snapshots) — both through monolithic and blocked paths.
    let grf = corpora::grf();
    let ts = corpora::timeseries();

    let blocked = FixedPsnrOptions {
        threads: 0,
        ..FixedPsnrOptions::default()
    };
    assert_sweep("GRF", &grf, &FixedPsnrOptions::default());
    assert_sweep("GRF", &grf, &blocked);
    assert_sweep("TS", &ts, &FixedPsnrOptions::default());
    assert_sweep("TS", &ts, &blocked);
}

#[test]
fn sweep_auto_predictor_holds_the_same_bands() {
    // Theorem 1 is predictor-agnostic, so routing the same sweep through
    // the per-block predictor bake-off (v5 containers) must hold exactly
    // the accuracy bands the Lorenzo-only paths hold.
    let auto = FixedPsnrOptions {
        threads: 0,
        predictor: PredictorKind::Auto,
        ..FixedPsnrOptions::default()
    };
    assert_sweep("GRF/auto", &corpora::grf(), &auto);
    assert_sweep("TS/auto", &corpora::timeseries(), &auto);
    assert_sweep("ATM/auto", &corpora::registry(fixed_psnr::data::DatasetId::Atm), &auto);
}

#[test]
fn auto_predictor_never_costs_ratio_at_fixed_psnr() {
    // At a fixed PSNR target the derived bound is identical for every
    // predictor, so the cost bake-off can only move the bitrate. Corpus-
    // wide it must never lose more than the per-block tag bytes to
    // Lorenzo, and must clearly win where the regression / spline
    // candidates earn their keep (noisy registry fields at fine bounds,
    // where Lorenzo's noise feedback doubles the residual entropy).
    // Floors sit below the measured uplift — ATM −14.7%, TS −9.9% at
    // 80 dB, see EXPERIMENTS.md — so only a selection regression trips
    // them.
    let lorenzo = FixedPsnrOptions {
        threads: 0,
        ..FixedPsnrOptions::default()
    };
    let auto = FixedPsnrOptions {
        predictor: PredictorKind::Auto,
        ..lorenzo
    };
    fn total<T: Scalar>(
        fields: &[(String, Field<T>)],
        opts: &FixedPsnrOptions,
        target: f64,
    ) -> f64 {
        fields
            .iter()
            .map(|(name, f)| {
                compress_fixed_psnr(f, target, opts)
                    .unwrap_or_else(|e| panic!("{name} @ {target} dB: {e}"))
                    .bytes
                    .len()
            })
            .sum::<usize>() as f64
    }
    // Guardrail: auto may never regress any corpus by more than 0.5%
    // (the measured worst case is +0.14% — pure v5 per-block tag bytes).
    let grf = corpora::grf();
    let ts = corpora::timeseries();
    for target in [40.0, 60.0, 80.0, 100.0] {
        for (label, base, bake) in [
            (
                "GRF",
                total(&grf, &lorenzo, target),
                total(&grf, &auto, target),
            ),
            (
                "TS",
                total(&ts, &lorenzo, target),
                total(&ts, &auto, target),
            ),
        ] {
            assert!(
                bake <= base * 1.005,
                "{label} @ {target} dB: auto {bake} bytes vs lorenzo {base} bytes"
            );
        }
    }
    // Uplift claims at 80 dB.
    let atm = corpora::registry(fixed_psnr::data::DatasetId::Atm);
    let (base, bake) = (total(&atm, &lorenzo, 80.0), total(&atm, &auto, 80.0));
    assert!(
        bake <= base * 0.90,
        "ATM @ 80 dB: auto {bake} bytes vs lorenzo {base} bytes — uplift below 10%"
    );
    let (base, bake) = (total(&ts, &lorenzo, 80.0), total(&ts, &auto, 80.0));
    assert!(
        bake <= base * 0.95,
        "TS @ 80 dB: auto {bake} bytes vs lorenzo {base} bytes — uplift below 5%"
    );
}

#[test]
fn search_baseline_agrees_with_fixed_psnr_but_costs_more() {
    use fixed_psnr::core::search::search_to_target_psnr;
    let field = &dataset(DatasetId::Hurricane, 26)[8].1; // P
    let target = 70.0;
    let fixed = compress_fixed_psnr(field, target, &FixedPsnrOptions::default()).expect("fixed");
    let search = search_to_target_psnr(field, target, 3.0, 30).expect("search");
    assert!(search.achieved_psnr >= target);
    assert!(fixed.outcome.achieved_psnr >= target - 1.0);
    assert!(
        search.invocations > 1,
        "search converged in one probe — baseline degenerate"
    );
}
