//! Cross-crate roundtrip integration: every field of every synthetic data
//! set, through every error-control mode, honours its contract.

use fixed_psnr::data::{generate, DatasetId, Resolution};
use fixed_psnr::prelude::*;
use fixed_psnr::sz;

fn roundtrip_bound(field: &Field<f32>, cfg: &SzConfig, eb_abs: f64) {
    let bytes = sz::compress(field, cfg).expect("compress");
    let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
    assert_eq!(back.shape(), field.shape());
    let pw = PointwiseError::between(field, &back);
    assert!(
        pw.respects_abs_bound(eb_abs),
        "max abs err {} > bound {eb_abs}",
        pw.max_abs
    );
}

#[test]
fn every_dataset_field_roundtrips_under_abs_bound() {
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 11) {
            let vr = nf.data.value_range();
            if vr == 0.0 {
                continue;
            }
            let eb = vr * 1e-4;
            let cfg = SzConfig::new(ErrorBound::Abs(eb));
            roundtrip_bound(&nf.data, &cfg, eb);
        }
    }
}

#[test]
fn every_dataset_field_roundtrips_under_rel_bound() {
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 12) {
            let vr = nf.data.value_range();
            if vr == 0.0 {
                continue;
            }
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
            roundtrip_bound(&nf.data, &cfg, 1e-3 * vr);
        }
    }
}

#[test]
fn auto_intervals_also_respects_bounds_on_all_datasets() {
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 13).into_iter().step_by(3) {
            let vr = nf.data.value_range();
            if vr == 0.0 {
                continue;
            }
            let cfg =
                SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(true);
            roundtrip_bound(&nf.data, &cfg, 1e-3 * vr);
        }
    }
}

#[test]
fn transform_codec_roundtrips_all_datasets_within_l2_budget() {
    use fixed_psnr::transform::{transform_compress, transform_decompress, TransformConfig};
    for id in DatasetId::ALL {
        for nf in generate(id, Resolution::Small, 14).into_iter().step_by(4) {
            let vr = nf.data.value_range();
            if vr == 0.0 {
                continue;
            }
            let eb = vr * 1e-3;
            let cfg = TransformConfig::new(ErrorBound::Abs(eb));
            let bytes = transform_compress(&nf.data, &cfg).expect("compress");
            let back: Field<f32> = transform_decompress(&bytes).expect("decompress");
            let d = Distortion::between(&nf.data, &back);
            // Coefficient errors are <= eb each, so RMSE <= eb.
            assert!(
                d.rmse() <= eb * (1.0 + 1e-9),
                "{}/{}: rmse {} > eb {eb}",
                id.name(),
                nf.name,
                d.rmse()
            );
        }
    }
}

#[test]
fn pointwise_rel_mode_bounds_every_sample_on_nyx() {
    // The log-transform mode matters most for log-normal density fields.
    for nf in generate(DatasetId::Nyx, Resolution::Small, 15) {
        let cfg = SzConfig::new(ErrorBound::PointwiseRel(1e-2));
        let bytes = sz::compress(&nf.data, &cfg).expect("compress");
        let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
        for (&x, &y) in nf.data.as_slice().iter().zip(back.as_slice()) {
            let tol = 1e-2 * x.abs() as f64 * (1.0 + 1e-5) + 1e-30;
            assert!(
                ((x - y).abs() as f64) <= tol,
                "{}: x={x} y={y}",
                nf.name
            );
        }
    }
}

#[test]
fn compressed_sizes_are_sane() {
    // Smooth scientific data at 1e-3 should compress well below raw size.
    let fields = generate(DatasetId::Atm, Resolution::Small, 16);
    let mut raw = 0usize;
    let mut compressed = 0usize;
    for nf in &fields {
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(true);
        let bytes = sz::compress(&nf.data, &cfg).expect("compress");
        raw += nf.data.len() * 4;
        compressed += bytes.len();
    }
    let ratio = raw as f64 / compressed as f64;
    assert!(ratio > 5.0, "snapshot ratio only {ratio:.2}");
}
