//! Statistical accuracy harness for the fixed-ratio mode.
//!
//! Protocol: sweep the targets {4, 8, 16, 32}× over the shared corpora
//! (registry data sets, GRF textures, drifting time series — see
//! `common::corpora`), through both the monolithic and blocked paths,
//! and hold the driver to three layers of guarantees:
//!
//! 1. **hard, per pair** — at most 3 compression passes (cross-checked
//!    against the `fratio.*` obs counters), and no *feasible* pair may
//!    land farther than [`WORST_FACTOR`] from its target;
//! 2. **aggregate** — per-corpus hit-rate floors over the feasible
//!    pairs. The corpora are deterministic, so the floors sit just
//!    below the measured rates and any driver regression trips them;
//! 3. **feasibility filter** — a `(field, target)` pair is excluded
//!    only when a near-lossless probe *already overshoots* the band:
//!    sparse hydrometeor / land-flag fields compress 4.4–100× at the
//!    tightest bound, so low targets are unreachable from above and
//!    prove nothing about the driver.
//!
//! Knobs for the CI smoke job: `FPSNR_RATIO_TABLE=1` prints the full
//! achieved-vs-target table on stdout (uploaded as an artifact);
//! `FPSNR_RATIO_TARGETS=8,16` overrides the target list (aggregate
//! floors are calibrated for the default list and are skipped for
//! overridden runs — the hard per-pair guarantees still apply).

mod common;

use common::corpora;
use fixed_psnr::data::DatasetId;
use fixed_psnr::prelude::*;
use fixed_psnr::sz;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default ratio targets, matching the paper-era SZ/ZFP evaluation grid.
const DEFAULT_TARGETS: [f64; 4] = [4.0, 8.0, 16.0, 32.0];

/// Tolerance band asserted throughout: target · (1 ± 10%).
const TOL: f64 = 0.1;

/// No feasible pair may land farther than this factor from its target,
/// even when it misses the ±10% band (the worst corpus-wide miss is a
/// NYX velocity component at 32× landing ≈ 1.57× low, deep on the
/// noise-feedback shoulder).
const WORST_FACTOR: f64 = 1.75;

/// The obs registry is process-global, so every test that runs the
/// driver serializes on one lock: the counter test must observe *only*
/// its own passes.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn targets() -> Vec<f64> {
    match std::env::var("FPSNR_RATIO_TARGETS") {
        Ok(raw) => raw
            .split(',')
            .map(|t| t.trim().parse::<f64>().expect("bad FPSNR_RATIO_TARGETS"))
            .collect(),
        Err(_) => DEFAULT_TARGETS.to_vec(),
    }
}

/// Aggregate floors only make sense for the target list they were
/// calibrated on.
fn default_targets() -> bool {
    std::env::var_os("FPSNR_RATIO_TARGETS").is_none()
}

fn table_enabled() -> bool {
    std::env::var_os("FPSNR_RATIO_TABLE").is_some()
}

struct Outcome {
    field: String,
    target: f64,
    achieved: f64,
    passes: usize,
    feasible: bool,
    hit: bool,
}

/// Ratio of a near-lossless probe — the smallest ratio any bound can
/// reach (ratio is monotone increasing in the bound). A pair counts as
/// feasible only when this floor sits *below* the band: a floor inside
/// or above it means at best a sliver of the band is reachable, and
/// hitting the sliver would demand more precision than the bound grid
/// itself offers.
fn floor_ratio<T: Scalar>(field: &Field<T>, base: &FixedRatioOptions) -> f64 {
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-9))
        .with_quant_bins(base.quant_bins)
        .with_lossless(base.lossless)
        .with_threads(base.threads)
        .with_block_rows(base.block_rows);
    let bytes = sz::compress(field, &cfg).expect("floor probe compresses");
    (field.len() * T::BYTES) as f64 / bytes.len() as f64
}

/// Sweep one corpus over the target grid, returning every outcome.
fn sweep<T: Scalar>(
    corpus: &str,
    fields: &[(String, Field<T>)],
    base: &FixedRatioOptions,
) -> Vec<Outcome> {
    let mut out = Vec::new();
    for (name, field) in fields {
        let floor = floor_ratio(field, base);
        for &target in &targets() {
            let opts = FixedRatioOptions {
                target_ratio: target,
                tolerance: TOL,
                ..*base
            };
            let run = compress_fixed_ratio(field, &opts)
                .unwrap_or_else(|e| panic!("{corpus}/{name} @ {target}x: {e}"));
            let feasible = floor <= target * (1.0 - TOL);
            let hit = run.within_tolerance;
            if table_enabled() {
                println!(
                    "{corpus}\t{name}\t{target}\t{:.3}\t{}\t{}\t{}",
                    run.achieved_ratio,
                    run.passes,
                    if feasible { "feasible" } else { "floor-skip" },
                    if hit { "hit" } else { "miss" },
                );
            }
            out.push(Outcome {
                field: name.clone(),
                target,
                achieved: run.achieved_ratio,
                passes: run.passes,
                feasible,
                hit,
            });
        }
    }
    out
}

/// The three guarantee layers over one corpus's outcomes.
fn assert_corpus(corpus: &str, outcomes: &[Outcome], min_hit_rate: f64) {
    for o in outcomes {
        assert!(
            o.passes <= 3,
            "{corpus}/{} @ {}x: {} passes (budget 3)",
            o.field,
            o.target,
            o.passes
        );
        if o.feasible {
            let off = (o.achieved / o.target).max(o.target / o.achieved);
            assert!(
                off <= WORST_FACTOR,
                "{corpus}/{} @ {}x: achieved {:.2}x, {off:.2}x off target",
                o.field,
                o.target,
                o.achieved
            );
        }
    }
    if !default_targets() {
        return;
    }
    let feasible: Vec<&Outcome> = outcomes.iter().filter(|o| o.feasible).collect();
    assert!(
        !feasible.is_empty(),
        "{corpus}: feasibility filter rejected the whole corpus"
    );
    let hits = feasible.iter().filter(|o| o.hit).count();
    let rate = hits as f64 / feasible.len() as f64;
    assert!(
        rate >= min_hit_rate,
        "{corpus}: hit rate {rate:.3} ({hits}/{}) below floor {min_hit_rate}",
        feasible.len()
    );
}

fn mono() -> FixedRatioOptions {
    FixedRatioOptions::new(8.0)
}

/// Blocked container, auto partition: `threads != 1` routes through the
/// blocked path; the partition itself depends only on the shape, so the
/// sweep is machine-independent.
fn blocked() -> FixedRatioOptions {
    FixedRatioOptions {
        threads: 2,
        ..FixedRatioOptions::new(8.0)
    }
}

/// Measured mono hit rates (feasible pairs, default targets): NYX
/// 20/24, ATM 284/309, Hurricane 40/46. Floors sit one resolution step
/// below so only a real regression trips them. The ATM rate dropped from
/// 291/302 when the lossless tail was rebuilt (per-chunk bake-off):
/// tiny 32× bodies shifted ~0.5–1% in size, which the discrete bound
/// refinement amplifies into several-percent achieved-ratio jumps at the
/// band edge — the trade bought 2–3× faster decompression.
fn registry_floor(id: DatasetId) -> f64 {
    match id {
        DatasetId::Nyx => 0.78,
        DatasetId::Atm => 0.91,
        DatasetId::Hurricane => 0.82,
    }
}

#[test]
fn registry_mono_sweep_hits_targets() {
    let _g = lock();
    for id in DatasetId::ALL {
        let outcomes = sweep(id.name(), &corpora::registry(id), &mono());
        assert_corpus(id.name(), &outcomes, registry_floor(id));
    }
}

#[test]
fn registry_blocked_sweep_hits_targets() {
    let _g = lock();
    for id in DatasetId::ALL {
        let outcomes = sweep(id.name(), &corpora::registry(id), &blocked());
        assert_corpus(id.name(), &outcomes, registry_floor(id) - 0.02);
    }
}

#[test]
fn grf_sweeps_hit_every_target() {
    let _g = lock();
    // Smooth dense textures: no floor skips, no excuses — every pair
    // must land in band on both paths.
    for (label, base) in [("GRF/mono", mono()), ("GRF/blocked", blocked())] {
        let outcomes = sweep(label, &corpora::grf(), &base);
        assert_corpus(label, &outcomes, 1.0);
        assert!(
            outcomes.iter().all(|o| o.feasible),
            "{label}: unexpected floor skip"
        );
    }
}

#[test]
fn auto_predictor_sweeps_hit_targets() {
    let _g = lock();
    // The per-block predictor bake-off (v5 containers) changes the
    // rate–bound curve the driver steers along, but the driver pilots
    // under the same predictor, so the hit-rate guarantees must match
    // the Lorenzo-only paths.
    let auto = FixedRatioOptions {
        threads: 2,
        predictor: PredictorKind::Auto,
        ..FixedRatioOptions::new(8.0)
    };
    let outcomes = sweep("GRF/auto", &corpora::grf(), &auto);
    assert_corpus("GRF/auto", &outcomes, 1.0);
    // Measured 21/24 (one band-edge snapshot per low target drifts out
    // under the bake-off's slightly different rate curve); the floor sits
    // one miss below so only a real regression trips it.
    let outcomes = sweep("TS/auto", &corpora::timeseries(), &auto);
    assert_corpus("TS/auto", &outcomes, 0.85);
}

#[test]
fn timeseries_sweeps_hit_targets() {
    let _g = lock();
    // 24/24 on both paths as of the lossless-tail rebuild (one 32×
    // snapshot used to land 0.5% outside the band); floor 0.9 tolerates
    // a couple of band-edge pairs drifting back out.
    for (label, base) in [("TS/mono", mono()), ("TS/blocked", blocked())] {
        let outcomes = sweep(label, &corpora::timeseries(), &base);
        assert_corpus(label, &outcomes, 0.9);
    }
}

#[test]
fn obs_counters_account_for_every_pass() {
    let _g = lock();
    let fields = corpora::registry(DatasetId::Hurricane);
    fixed_psnr::obs::reset();
    fixed_psnr::obs::enable();
    if !fixed_psnr::obs::is_enabled() {
        // Built with fpsnr-obs/off: the probes compile to nothing, so
        // there are no counters to reconcile.
        return;
    }
    let outcomes = sweep("Hurricane", &fields, &mono());
    fixed_psnr::obs::disable();
    let report = fixed_psnr::obs::snapshot();
    let total_passes: u64 = outcomes.iter().map(|o| o.passes as u64).sum();
    let pairs = outcomes.len() as u64;
    // Every compression the driver ran is on the books, the budget held,
    // and exactly one pilot walk ran per request.
    assert_eq!(
        report.counter("fratio.compress_passes"),
        Some(total_passes),
        "obs pass counter disagrees with driver reports"
    );
    assert!(
        total_passes <= 3 * pairs,
        "pass budget blown: {total_passes} passes for {pairs} pairs"
    );
    assert_eq!(report.counter("fratio.pilot_passes"), Some(pairs));
    // The per-pass prediction trace exists for pass 1 of every request.
    assert!(report
        .counter("fratio.pass.1.achieved_bpv_milli")
        .is_some());
}

#[test]
fn blocked_container_bytes_ignore_thread_count() {
    let _g = lock();
    let fields = corpora::registry(DatasetId::Nyx);
    let (name, field) = &fields[0];
    let base = FixedRatioOptions {
        threads: 2,
        block_rows: 16,
        ..FixedRatioOptions::new(8.0)
    };
    let two = compress_fixed_ratio(field, &base).expect("2 threads");
    let four = compress_fixed_ratio(
        field,
        &FixedRatioOptions {
            threads: 4,
            ..base
        },
    )
    .expect("4 threads");
    assert_eq!(
        two.bytes, four.bytes,
        "{name}: container bytes depend on the thread count"
    );
    assert_eq!(two.eb_rel, four.eb_rel);
    assert_eq!(two.passes, four.passes);
}
