//! Statistical accuracy harness for the snapshot bit allocator.
//!
//! Protocol: build mixed snapshots from the shared corpora (registry
//! data sets, GRF textures, drifting time series — see
//! `common::corpora`), sweep global budgets from loose (raw/4) to tight
//! (raw/64), and hold [`allocate_snapshot`] to four layers of
//! guarantees:
//!
//! 1. **budget, hard** — a feasible budget is never exceeded by more
//!    than the 2% tolerance, and never under-used past the 90%
//!    utilization floor unless the PSNR grid ceiling caps spending;
//! 2. **pass bound, hard** — no field ever compresses more than twice,
//!    cross-checked against the `alloc.*` obs counters;
//! 3. **optimality** — the achieved min PSNR trails an *oracle* (shared
//!    target found by bisection with real compressions of every field)
//!    by at most [`ORACLE_FLOOR_DB`];
//! 4. **properties** — the allocation is deterministic and thread-count
//!    invariant, monotone in the budget, and degenerate fields
//!    (constant, all-NaN) quarantine instead of poisoning the solve.
//!
//! Knobs for the CI smoke job: `FPSNR_ALLOC_TABLE=1` prints per-field
//! allocation tables on stdout; `FPSNR_ALLOC_FULL=1` additionally runs
//! the oracle comparison on the 79-field ATM snapshot (minutes in debug
//! builds, so it is opt-in — the bench binary gates the same number in
//! release mode).

mod common;

use common::corpora;
use fixed_psnr::data::DatasetId;
use fixed_psnr::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Calibrated oracle gap: the allocator's achieved min PSNR may trail
/// the exhaustive shared-target bisection by at most this much. The
/// measured gap on the mixed corpus is ≈ 0.3–0.8 dB (grid quantization
/// at 0.25 dB plus rate-model error absorbed by the feedback pass);
/// 1.5 dB is the acceptance bound from the design doc.
const ORACLE_FLOOR_DB: f64 = 1.5;

/// The obs registry is process-global, so every test that runs the
/// allocator serializes on one lock: the counter test must observe
/// *only* its own passes.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn table_enabled() -> bool {
    std::env::var_os("FPSNR_ALLOC_TABLE").is_some()
}

fn full_enabled() -> bool {
    std::env::var_os("FPSNR_ALLOC_FULL").is_some()
}

/// The main evaluation snapshot: one full registry data set plus the
/// GRF textures (f64) and the drifting time series — 22 fields mixing
/// dtypes, shapes (3-D storm bricks, 2-D spectra, 2-D drift) and
/// entropy regimes.
fn mixed_snapshot() -> Vec<SnapshotField> {
    let mut out: Vec<SnapshotField> = corpora::registry(DatasetId::Hurricane)
        .into_iter()
        .map(|(name, f)| SnapshotField::f32(name, f))
        .collect();
    out.extend(
        corpora::grf()
            .into_iter()
            .map(|(name, f)| SnapshotField::f64(name, f)),
    );
    out.extend(
        corpora::timeseries()
            .into_iter()
            .map(|(name, f)| SnapshotField::f32(name, f)),
    );
    out
}

/// A small snapshot for the property tests (NYX 16³ bricks + GRF +
/// time series = 15 fields, ≈ 0.4 MB raw) — cheap enough to allocate
/// repeatedly.
fn small_snapshot() -> Vec<SnapshotField> {
    let mut out: Vec<SnapshotField> = corpora::registry(DatasetId::Nyx)
        .into_iter()
        .map(|(name, f)| SnapshotField::f32(name, f))
        .collect();
    out.extend(
        corpora::grf()
            .into_iter()
            .map(|(name, f)| SnapshotField::f64(name, f)),
    );
    out.extend(
        corpora::timeseries()
            .into_iter()
            .map(|(name, f)| SnapshotField::f32(name, f)),
    );
    out
}

fn raw_total(fields: &[SnapshotField]) -> u64 {
    fields.iter().map(|f| f.data.raw_bytes()).sum()
}

fn grid_ceiling(opts: &AllocOptions) -> f64 {
    opts.psnr_lo + opts.psnr_step * (opts.psnr_points - 1) as f64
}

fn print_table(label: &str, run: &SnapshotAllocation) {
    if !table_enabled() {
        return;
    }
    println!("== {label} ==");
    println!("field,assigned_psnr,achieved_psnr,bytes,ratio,passes,quarantined");
    for r in &run.fields {
        let s = &r.stat;
        let ratio = if s.achieved_bytes > 0 {
            s.raw_bytes as f64 / s.achieved_bytes as f64
        } else {
            f64::NAN
        };
        println!(
            "{},{:.2},{:.2},{},{:.2},{},{}",
            s.field, s.assigned_psnr, s.achieved_psnr, s.achieved_bytes, ratio, s.passes,
            s.quarantined
        );
    }
    let sm = &run.summary;
    println!(
        "total {}/{} bytes (utilization {:.3}), min psnr {:.2}/{:.2} dB, passes max {} total {}, resolves {}",
        sm.total_bytes,
        sm.budget_bytes,
        sm.utilization,
        sm.min_assigned_psnr,
        sm.min_achieved_psnr,
        sm.max_passes,
        sm.total_passes,
        run.resolves
    );
}

/// Assert the hard guarantees every healthy allocation must satisfy,
/// and return whether the run was feasible above the grid floor.
fn assert_hard_guarantees(label: &str, run: &SnapshotAllocation, opts: &AllocOptions) -> bool {
    for r in &run.fields {
        assert!(
            r.failure.is_none(),
            "{label}: field {} failed: {:?}",
            r.stat.field,
            r.failure
        );
        assert!(
            r.stat.passes <= 2,
            "{label}: field {} took {} passes",
            r.stat.field,
            r.stat.passes
        );
    }
    assert!(run.summary.max_passes <= 2, "{label}: pass bound blown");
    assert!(run.resolves <= 1, "{label}: more than one re-solve");
    // Above the grid floor the solver had room to move down, so the
    // budget is binding; *at* the floor the budget may be infeasible
    // (nothing below the floor exists to assign) and only the pass
    // bounds apply.
    let feasible = run.summary.min_assigned_psnr > opts.psnr_lo + 1e-9;
    if feasible {
        assert!(
            run.summary.within_budget(opts.tolerance),
            "{label}: budget exceeded: {}/{} bytes",
            run.summary.total_bytes,
            run.summary.budget_bytes
        );
    }
    feasible
}

/// Compress every field at one shared target; `None` when any field
/// fails. Returns (total bytes, min achieved PSNR).
fn compress_all_at(
    fields: &[SnapshotField],
    target: f64,
    opts: &FixedPsnrOptions,
) -> Option<(u64, f64)> {
    let mut total = 0u64;
    let mut min_psnr = f64::INFINITY;
    for f in fields {
        let (bytes, achieved) = match &f.data {
            AnyField::F32(fld) => {
                let r = compress_fixed_psnr(fld, target, opts).ok()?;
                (r.bytes.len() as u64, r.outcome.achieved_psnr)
            }
            AnyField::F64(fld) => {
                let r = compress_fixed_psnr(fld, target, opts).ok()?;
                (r.bytes.len() as u64, r.outcome.achieved_psnr)
            }
        };
        total += bytes;
        if achieved < min_psnr {
            min_psnr = achieved;
        }
    }
    Some((total, min_psnr))
}

struct Oracle {
    target: f64,
    min_achieved: f64,
    total: u64,
}

/// The reference answer the allocator competes against: bisect a
/// *shared* target PSNR with real compressions of every field until the
/// highest budget-fitting target is bracketed. This is exactly the
/// max-min objective solved exhaustively — no prediction error, no grid
/// quantization — at a cost (≈ 10 full snapshot compressions) the
/// allocator is forbidden to pay.
fn oracle_shared_target(
    fields: &[SnapshotField],
    budget: u64,
    opts: &AllocOptions,
) -> Option<Oracle> {
    let copts = opts.compress;
    let mut lo = opts.psnr_lo;
    let mut hi = grid_ceiling(opts);
    let (floor_total, floor_min) = compress_all_at(fields, lo, &copts)?;
    if floor_total > budget {
        return None; // infeasible even at the floor
    }
    let mut best = Oracle {
        target: lo,
        min_achieved: floor_min,
        total: floor_total,
    };
    for _ in 0..9 {
        let mid = 0.5 * (lo + hi);
        match compress_all_at(fields, mid, &copts) {
            Some((total, min_a)) if total <= budget => {
                best = Oracle {
                    target: mid,
                    min_achieved: min_a,
                    total,
                };
                lo = mid;
            }
            _ => hi = mid,
        }
    }
    Some(best)
}

// ---------------------------------------------------------------- tests

#[test]
fn budget_sweep_fits_and_utilizes() {
    let _g = lock();
    let fields = mixed_snapshot();
    let raw = raw_total(&fields);
    for factor in [4u64, 16, 64] {
        let opts = AllocOptions::new(raw / factor);
        let run = allocate_snapshot(&fields, &opts).expect("allocation");
        print_table(&format!("mixed @ {factor}x"), &run);
        let feasible = assert_hard_guarantees(&format!("{factor}x"), &run, &opts);
        assert_eq!(run.fields.len(), fields.len());
        // Utilization floor applies whenever the solver had headroom:
        // feasible and not pinned at the grid ceiling.
        let saturated = run.summary.min_assigned_psnr >= grid_ceiling(&opts) - 1e-9;
        if feasible && !saturated {
            assert!(
                run.summary.utilization >= 0.90,
                "{factor}x: utilization {:.3} below floor ({}/{} bytes)",
                run.summary.utilization,
                run.summary.total_bytes,
                run.summary.budget_bytes
            );
        }
    }
}

#[test]
fn weighted_objective_fits_and_respects_weights() {
    let _g = lock();
    let mut fields = mixed_snapshot();
    // Make the first time-series field precious.
    let heavy = fields.len() - 6;
    fields[heavy] = fields[heavy].clone().with_weight(1e5);
    let raw = raw_total(&fields);
    let opts = AllocOptions {
        objective: AllocObjective::WeightedMse,
        ..AllocOptions::new(raw / 16)
    };
    let run = allocate_snapshot(&fields, &opts).expect("allocation");
    print_table("mixed weighted @ 16x", &run);
    assert_hard_guarantees("weighted", &run, &opts);
    // The upweighted field must sit at or above the median assignment.
    let mut assigned: Vec<f64> = run
        .fields
        .iter()
        .filter(|r| !r.stat.quarantined)
        .map(|r| r.stat.assigned_psnr)
        .collect();
    assigned.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = assigned[assigned.len() / 2];
    assert!(
        run.fields[heavy].stat.assigned_psnr >= median,
        "heavy field assigned {:.2} dB below the median {:.2}",
        run.fields[heavy].stat.assigned_psnr,
        median
    );
}

#[test]
fn min_psnr_tracks_the_oracle() {
    let _g = lock();
    let fields = mixed_snapshot();
    let budget = raw_total(&fields) / 16;
    let opts = AllocOptions::new(budget);
    let run = allocate_snapshot(&fields, &opts).expect("allocation");
    let oracle = oracle_shared_target(&fields, budget, &opts).expect("oracle feasible");
    if table_enabled() {
        println!(
            "oracle target {:.2} dB (min achieved {:.2}, {} bytes) vs allocator min achieved {:.2}",
            oracle.target, oracle.min_achieved, oracle.total, run.summary.min_achieved_psnr
        );
    }
    assert!(
        run.summary.min_achieved_psnr >= oracle.min_achieved - ORACLE_FLOOR_DB,
        "allocator min PSNR {:.2} trails the oracle {:.2} by more than {ORACLE_FLOOR_DB} dB",
        run.summary.min_achieved_psnr,
        oracle.min_achieved
    );
}

#[test]
fn allocation_is_deterministic_and_thread_invariant() {
    let _g = lock();
    let fields = small_snapshot();
    let budget = raw_total(&fields) / 16;
    let runs: Vec<SnapshotAllocation> = [1usize, 4, 8]
        .iter()
        .map(|&t| {
            let opts = AllocOptions {
                threads: t,
                ..AllocOptions::new(budget)
            };
            allocate_snapshot(&fields, &opts).expect("allocation")
        })
        .collect();
    let base = &runs[0];
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            run.summary.total_bytes, base.summary.total_bytes,
            "thread count changed total bytes (run {i})"
        );
        for (a, b) in base.fields.iter().zip(&run.fields) {
            assert_eq!(a.stat.field, b.stat.field, "field order changed (run {i})");
            assert_eq!(
                a.stat.assigned_psnr.to_bits(),
                b.stat.assigned_psnr.to_bits(),
                "assignment for {} changed with thread count",
                a.stat.field
            );
            assert_eq!(
                a.bytes, b.bytes,
                "container bytes for {} changed with thread count",
                a.stat.field
            );
        }
    }
}

#[test]
fn min_psnr_is_monotone_in_budget() {
    let _g = lock();
    let fields = small_snapshot();
    let raw = raw_total(&fields);
    let mut prev = f64::NEG_INFINITY;
    let mut grew = false;
    for factor in [32u64, 16, 8, 4] {
        let opts = AllocOptions::new(raw / factor);
        let run = allocate_snapshot(&fields, &opts).expect("allocation");
        let assigned = run.summary.min_assigned_psnr;
        assert!(
            assigned >= prev - 1e-9,
            "budget raw/{factor} lowered the min assigned PSNR: {prev:.2} -> {assigned:.2}"
        );
        grew |= assigned > prev && prev.is_finite();
        prev = assigned;
    }
    assert!(grew, "larger budgets never bought higher PSNR");
}

#[test]
fn degenerate_fields_quarantine_and_budget_is_resolved() {
    let _g = lock();
    let mut fields = small_snapshot();
    fields.insert(
        2,
        SnapshotField::f32("flat", Field::from_vec(Shape::D2(32, 32), vec![7.5; 1024])),
    );
    fields.push(SnapshotField::f64(
        "nans",
        Field::from_vec(Shape::D2(32, 32), vec![f64::NAN; 1024]),
    ));
    let raw = raw_total(&fields);
    let opts = AllocOptions::new(raw / 16);
    let run = allocate_snapshot(&fields, &opts).expect("allocation");
    print_table("degenerate mix @ 16x", &run);
    assert_hard_guarantees("degenerate", &run, &opts);
    assert_eq!(run.summary.n_quarantined, 2);
    for r in &run.fields {
        if r.stat.quarantined {
            assert!(r.bytes.is_some(), "{}: quarantined field not stored", r.stat.field);
            assert!(r.stat.assigned_psnr.is_nan());
            assert_eq!(r.stat.passes, 1);
        } else {
            assert!(
                r.stat.assigned_psnr.is_finite(),
                "{}: healthy field got no assignment",
                r.stat.field
            );
        }
    }
    // The quarantine bytes were pre-charged: the healthy fields'
    // spending plus the quarantine spending still fits the budget.
    assert!(run.summary.within_budget(opts.tolerance));
}

#[test]
fn obs_counters_account_for_every_pass() {
    let _g = lock();
    let fields = mixed_snapshot();
    let opts = AllocOptions::new(raw_total(&fields) / 16);
    fixed_psnr::obs::reset();
    fixed_psnr::obs::enable();
    if !fixed_psnr::obs::is_enabled() {
        // Built with fpsnr-obs/off: the probes compile to nothing.
        return;
    }
    let run = allocate_snapshot(&fields, &opts).expect("allocation");
    fixed_psnr::obs::disable();
    let report = fixed_psnr::obs::snapshot();
    let n = fields.len() as u64;
    let quarantined = run.summary.n_quarantined as u64;
    let second: u64 = run
        .fields
        .iter()
        .filter(|r| r.stat.passes == 2)
        .count() as u64;
    // The lock serializes every allocator test in this binary, so the
    // counters are exactly this run's.
    assert_eq!(report.counter("alloc.pilot_passes"), Some(n - quarantined));
    assert_eq!(
        report.counter("alloc.compress_passes"),
        Some(run.summary.total_passes),
        "every compression the allocator ran must be on the books"
    );
    assert!(
        run.summary.total_passes <= 2 * n,
        "pass budget blown: {} passes for {n} fields",
        run.summary.total_passes
    );
    if second > 0 {
        assert_eq!(report.counter("alloc.second_passes"), Some(second));
        assert_eq!(report.counter("alloc.resolves"), Some(run.resolves as u64));
    }
}

/// The acceptance corpus from the design doc: the CESM-ATM registry
/// snapshot (79 fields of 90×180) at a 16×-ratio budget.
#[test]
fn atm_snapshot_79_fields_at_16x() {
    let _g = lock();
    let fields: Vec<SnapshotField> = corpora::registry(DatasetId::Atm)
        .into_iter()
        .map(|(name, f)| SnapshotField::f32(name, f))
        .collect();
    assert_eq!(fields.len(), 79, "ATM registry changed size");
    let budget = raw_total(&fields) / 16;
    let opts = AllocOptions::new(budget);
    let run = allocate_snapshot(&fields, &opts).expect("allocation");
    print_table("ATM @ 16x", &run);
    let feasible = assert_hard_guarantees("ATM", &run, &opts);
    assert!(feasible, "16x must be feasible on ATM");
    assert!(
        run.summary.utilization >= 0.90,
        "ATM utilization {:.3} below floor",
        run.summary.utilization
    );
    // The oracle costs ≈ 10 more full-snapshot compressions; the bench
    // binary gates the same bound in release, so debug runs only pay it
    // on request.
    if full_enabled() {
        let oracle = oracle_shared_target(&fields, budget, &opts).expect("oracle feasible");
        assert!(
            run.summary.min_achieved_psnr >= oracle.min_achieved - ORACLE_FLOOR_DB,
            "ATM min PSNR {:.2} trails the oracle {:.2} by more than {ORACLE_FLOOR_DB} dB",
            run.summary.min_achieved_psnr,
            oracle.min_achieved
        );
    }
}
