//! Slab-parallel compression of one large field: within-field parallelism
//! for NYX-scale volumes, with the fixed-PSNR guarantee intact because all
//! slabs share one bound derived from the global value range.
//!
//! ```text
//! cargo run --release --example large_field_slabs
//! ```

use fixed_psnr::prelude::*;
use std::time::Instant;

fn main() {
    // One "large" 3-D volume (scaled so the example runs in seconds).
    let field = Field::from_fn_3d(96, 96, 96, |i, j, k| {
        let (x, y, z) = (i as f32 * 0.07, j as f32 * 0.06, k as f32 * 0.05);
        (x.sin() * y.cos() + (z * 1.7).sin()) * 20.0 + (x * y * 0.3).sin() * 2.0
    });
    let mb = field.len() as f64 * 4.0 / (1024.0 * 1024.0);
    let target = 80.0;
    let threads = fixed_psnr::parallel::default_threads();
    println!("volume: {} ({mb:.1} MiB), target {target} dB", field.shape());

    // Serial reference: the whole field as one SZ stream.
    let t0 = Instant::now();
    let serial = compress_fixed_psnr_only(&field, target, &FixedPsnrOptions::default())
        .expect("serial compress");
    let serial_s = t0.elapsed().as_secs_f64();

    // Slab-parallel: one stream per slab, compressed concurrently.
    for slabs in [2usize, 4, 8] {
        let t0 = Instant::now();
        let bytes = compress_slabs_fixed_psnr(&field, target, slabs, threads)
            .expect("slab compress");
        let secs = t0.elapsed().as_secs_f64();
        let back: Field<f32> = decompress_slabs(&bytes, threads).expect("slab decompress");
        let psnr = Distortion::between(&field, &back).psnr();
        println!(
            "  {slabs} slabs: {:>8} B (ratio {:>5.1}), {:>6.3}s ({:>4.1}x vs serial), \
             achieved {:.2} dB",
            bytes.len(),
            field.len() as f64 * 4.0 / bytes.len() as f64,
            secs,
            serial_s / secs,
            psnr
        );
        assert!(psnr >= target - 3.0, "slab PSNR drifted: {psnr}");
    }
    println!(
        "  serial:  {:>8} B (ratio {:>5.1}), {serial_s:>6.3}s (reference)",
        serial.len(),
        field.len() as f64 * 4.0 / serial.len() as f64
    );
    println!(
        "\nslab boundaries restart the predictor, costing a sliver of ratio; the\n\
         error bound and the fixed-PSNR estimate are unaffected because every slab\n\
         quantizes with the same global eb_abs."
    );
}
