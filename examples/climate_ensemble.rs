//! Climate-ensemble scenario: fix one PSNR for an entire 79-field CESM-ATM
//! snapshot and compress every field in parallel — the exact pain point the
//! paper's introduction motivates (no more per-field trial-and-error).
//!
//! ```text
//! cargo run --release --example climate_ensemble
//! ```

use fixed_psnr::data::{DatasetId, Resolution};
use fixed_psnr::prelude::*;

fn main() {
    let threads = fixed_psnr::parallel::default_threads();
    let target = 80.0;

    // Synthesize the 79-field ATM-like snapshot (stand-in for a real dump).
    let fields: Vec<(String, Field<f32>)> =
        fixed_psnr::data::generate(DatasetId::Atm, Resolution::Small, 2026)
            .into_iter()
            .map(|nf| (nf.name, nf.data))
            .collect();
    let total_mb: f64 =
        fields.iter().map(|(_, f)| f.len() * 4).sum::<usize>() as f64 / (1024.0 * 1024.0);
    println!(
        "snapshot: {} fields, {total_mb:.1} MiB, target {target} dB, {threads} threads",
        fields.len()
    );

    let t0 = std::time::Instant::now();
    let (outcomes, summary) = run_batch_summary(
        "ATM",
        &fields,
        target,
        &FixedPsnrOptions::default(),
        threads,
    );
    let secs = t0.elapsed().as_secs_f64();

    // Per-field report, worst deviations first.
    let mut sorted = outcomes.clone();
    sorted.sort_by(|a, b| a.deviation().partial_cmp(&b.deviation()).expect("finite"));
    println!("\nfive fields with the lowest achieved PSNR:");
    for o in sorted.iter().take(5) {
        println!(
            "  {:<10} achieved {:>7.2} dB (dev {:+.2}), ratio {:.1}",
            o.field,
            o.achieved_psnr,
            o.deviation(),
            o.ratio
        );
    }
    println!("five fields with the highest achieved PSNR:");
    for o in sorted.iter().rev().take(5) {
        println!(
            "  {:<10} achieved {:>7.2} dB (dev {:+.2}), ratio {:.1}",
            o.field,
            o.achieved_psnr,
            o.deviation(),
            o.ratio
        );
    }

    println!(
        "\nsummary: AVG {:.2} dB, STDEV {:.2}, {:.0}% of fields meet the demand",
        summary.avg,
        summary.stdev,
        summary.meet_rate * 100.0
    );
    println!(
        "wall time {secs:.2}s for {n} fields - one compression each, versus the \
         several compress/measure iterations per field the pre-paper workflow needed",
        n = outcomes.len()
    );
}
