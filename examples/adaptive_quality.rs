//! Rate–distortion navigation: sweep fixed-PSNR targets on one field to
//! pick the cheapest quality that still satisfies an analysis criterion,
//! and compare against the pre-paper bisection baseline.
//!
//! ```text
//! cargo run --release --example adaptive_quality
//! ```

use fixed_psnr::core::search::search_to_target_psnr;
use fixed_psnr::data::atm;
use fixed_psnr::data::Resolution;
use fixed_psnr::prelude::*;

fn main() {
    let field = atm::field_by_name("TS", Resolution::Small, 99)
        .expect("TS exists")
        .data;

    // One-pass sweep: with fixed-PSNR each rung costs exactly one
    // compression, so scanning the rate-distortion curve is cheap.
    println!("fixed-PSNR sweep over targets (one compression per rung):");
    println!("{:>8} {:>10} {:>8} {:>12}", "target", "achieved", "ratio", "bits/sample");
    let mut chosen: Option<(f64, f64)> = None;
    for target in [30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
        let run = compress_fixed_psnr(&field, target, &FixedPsnrOptions::default())
            .expect("compress");
        println!(
            "{target:>8.0} {:>10.2} {:>8.1} {:>12.3}",
            run.outcome.achieved_psnr,
            run.rate.ratio(),
            run.rate.bit_rate()
        );
        // Analysis criterion: first rung whose achieved PSNR clears 75 dB.
        if chosen.is_none() && run.outcome.achieved_psnr >= 75.0 {
            chosen = Some((target, run.rate.ratio()));
        }
    }
    let (target, ratio) = chosen.expect("some rung clears 75 dB");
    println!(
        "\ncheapest rung clearing 75 dB: target {target} dB at ratio {ratio:.1}"
    );

    // The pre-paper alternative for ONE quality point: bisection with a
    // full compress+decompress+measure per probe.
    let t0 = std::time::Instant::now();
    let search = search_to_target_psnr(&field, 75.0, 2.0, 30).expect("search");
    println!(
        "\nbaseline bisection to 75 dB: {} compressor invocations, {:.1} ms, \
         achieved {:.2} dB",
        search.invocations,
        t0.elapsed().as_secs_f64() * 1e3,
        search.achieved_psnr
    );
    println!(
        "fixed-PSNR needed exactly 1 invocation for that point — the {}x saving\n\
         the paper's introduction argues for, per field, per snapshot.",
        search.invocations
    );
}
