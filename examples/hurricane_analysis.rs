//! Hurricane post-analysis scenario: different variables need different
//! fidelity. Velocity fields feed a vorticity analysis (high PSNR);
//! hydrometeors feed visualization (lower PSNR is fine). Shows mixing
//! fixed-PSNR targets per variable group and validating a derived quantity
//! (vertical vorticity) after decompression.
//!
//! ```text
//! cargo run --release --example hurricane_analysis
//! ```

use fixed_psnr::data::{DatasetId, Resolution};
use fixed_psnr::prelude::*;
use fixed_psnr::sz;

/// Mean absolute vertical vorticity dv/dx − du/dy at the surface level.
fn surface_vorticity(u: &Field<f32>, v: &Field<f32>) -> f64 {
    let Shape::D3(_, d1, d2) = u.shape() else {
        panic!("expected 3-D wind fields")
    };
    let mut acc = 0.0f64;
    let mut n = 0usize;
    for j in 1..d1 {
        for k in 1..d2 {
            let dvdx = (v.get(&[0, j, k]) - v.get(&[0, j, k - 1])) as f64;
            let dudy = (u.get(&[0, j, k]) - u.get(&[0, j - 1, k])) as f64;
            acc += (dvdx - dudy).abs();
            n += 1;
        }
    }
    acc / n as f64
}

fn main() {
    let snapshot = fixed_psnr::data::generate(DatasetId::Hurricane, Resolution::Small, 7);
    let by_name = |name: &str| -> Field<f32> {
        snapshot
            .iter()
            .find(|nf| nf.name == name)
            .expect("field exists")
            .data
            .clone()
    };
    let u = by_name("U");
    let v = by_name("V");

    // Per-group targets: dynamics at 100 dB, moisture at 60 dB.
    let groups: [(&str, f64, &[&str]); 2] = [
        ("dynamics", 100.0, &["U", "V", "W", "P", "TC"]),
        ("moisture", 60.0, &["QVAPOR", "QCLOUD", "QRAIN", "QICE", "QSNOW", "QGRAUP", "CLOUD", "PRECIP"]),
    ];

    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for (group, target, names) in groups {
        println!("group '{group}' at {target} dB:");
        for name in names {
            let field = by_name(name);
            let run = compress_fixed_psnr(&field, target, &FixedPsnrOptions::default())
                .expect("finite field");
            total_in += field.len() * 4;
            total_out += run.bytes.len();
            println!(
                "  {:<8} achieved {:>7.2} dB, ratio {:>6.1}",
                name, run.outcome.achieved_psnr, run.rate.ratio()
            );
        }
    }
    println!(
        "\nmixed-fidelity snapshot: {:.1} MiB -> {:.2} MiB (overall ratio {:.1})",
        total_in as f64 / (1024.0 * 1024.0),
        total_out as f64 / (1024.0 * 1024.0),
        total_in as f64 / total_out as f64
    );

    // Validate the derived quantity survives 100 dB compression.
    let ru: Field<f32> = sz::decompress(
        &compress_fixed_psnr(&u, 100.0, &FixedPsnrOptions::default())
            .expect("compress U")
            .bytes,
    )
    .expect("decompress U");
    let rv: Field<f32> = sz::decompress(
        &compress_fixed_psnr(&v, 100.0, &FixedPsnrOptions::default())
            .expect("compress V")
            .bytes,
    )
    .expect("decompress V");
    let before = surface_vorticity(&u, &v);
    let after = surface_vorticity(&ru, &rv);
    let rel = ((after - before) / before).abs();
    println!(
        "\nsurface |vorticity|: original {before:.5}, after 100 dB compression {after:.5} \
         (relative change {:.3e})",
        rel
    );
    assert!(rel < 0.01, "vorticity drifted by {rel}");
    println!("OK — derived analysis preserved at the chosen fidelity");
}
