//! The HACC motivation (paper §I), quantified: with a fixed storage budget,
//! is it better to keep every k-th snapshot raw (*temporal decimation*) or
//! to keep **every** snapshot fixed-PSNR compressed?
//!
//! Strategy A (decimation): store every 4th snapshot uncompressed; missing
//! time steps are linearly interpolated from the stored neighbours.
//! Strategy B (fixed-PSNR): store all snapshots, compressed at a target
//! chosen so the total bytes match strategy A's budget.
//!
//! The metric is the time-averaged PSNR of what an analyst can reconstruct
//! at *every* step.
//!
//! ```text
//! cargo run --release --example temporal_fidelity
//! ```

use fixed_psnr::data::timeseries::DriftField;
use fixed_psnr::prelude::*;
use fixed_psnr::sz;

fn main() {
    let df = DriftField {
        rows: 96,
        cols: 144,
        ..DriftField::default()
    };
    let n_steps = 24usize;
    let keep_every = 4usize;
    let snapshots = df.series(n_steps, 0.25);
    let raw_bytes_per_snap = snapshots[0].len() * 4;

    // Strategy A: decimation budget.
    let stored_raw = n_steps.div_ceil(keep_every);
    let budget = stored_raw * raw_bytes_per_snap;
    println!(
        "{n_steps} snapshots of {} ({} KiB each); decimation keeps {stored_raw} raw \
         -> budget {} KiB",
        snapshots[0].shape(),
        raw_bytes_per_snap / 1024,
        budget / 1024
    );

    // A: per-step PSNR of linear interpolation between kept snapshots.
    let mut psnr_a = Vec::new();
    for (t, truth) in snapshots.iter().enumerate() {
        let lo = (t / keep_every) * keep_every;
        let hi = (lo + keep_every).min(n_steps - 1);
        let approx = if t == lo || lo == hi {
            snapshots[lo].clone()
        } else {
            let w = (t - lo) as f32 / (hi - lo) as f32;
            let a = &snapshots[lo];
            let b = &snapshots[hi];
            Field::from_vec(
                a.shape(),
                a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(&x, &y)| x * (1.0 - w) + y * w)
                    .collect(),
            )
        };
        psnr_a.push(Distortion::between(truth, &approx).psnr());
    }

    // B: find (by one coarse sweep — each probe costs one compression of
    // one snapshot, thanks to fixed-PSNR) the highest target fitting the
    // budget, then compress all snapshots at it.
    let opts = FixedPsnrOptions::default();
    let mut chosen = 30.0;
    for target in [100.0, 90.0, 80.0, 70.0, 60.0, 50.0, 40.0, 30.0] {
        let probe = compress_fixed_psnr_only(&snapshots[0], target, &opts).expect("probe");
        if probe.len() * n_steps <= budget {
            chosen = target;
            break;
        }
    }
    let mut total_b = 0usize;
    let mut psnr_b = Vec::new();
    for truth in &snapshots {
        let bytes = compress_fixed_psnr_only(truth, chosen, &opts).expect("compress");
        total_b += bytes.len();
        let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
        psnr_b.push(Distortion::between(truth, &back).psnr());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    println!("\nper-step reconstruction quality over all {n_steps} steps:");
    println!(
        "  A decimation (every {keep_every}th raw):   mean {:6.2} dB, worst step {:6.2} dB, {} KiB",
        mean(&psnr_a),
        min(&psnr_a),
        budget / 1024
    );
    println!(
        "  B fixed-PSNR all steps @ {chosen} dB: mean {:6.2} dB, worst step {:6.2} dB, {} KiB",
        mean(&psnr_b),
        min(&psnr_b),
        total_b / 1024
    );
    assert!(total_b <= budget + budget / 10, "budget blown");
    assert!(
        min(&psnr_b) > min(&psnr_a),
        "compression should beat decimation at the worst step"
    );
    println!(
        "\nfixed-PSNR makes the budget negotiation a one-liner per snapshot (Eq. 8),\n\
         and keeping every compressed step beats interpolating between raw dumps —\n\
         the §I argument for lossy compression over temporal decimation."
    );
}
