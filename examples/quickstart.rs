//! Quickstart: compress one field to a target PSNR in a single pass.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fixed_psnr::prelude::*;
use fixed_psnr::sz;

fn main() {
    // A smooth 2-D field standing in for one simulation variable.
    let field = Field::from_fn_2d(256, 256, |i, j| {
        let x = i as f32 * 0.04;
        let y = j as f32 * 0.03;
        15.0 * (x.sin() * y.cos()) + 2.0 * (3.0 * x).cos()
    });

    // The paper's three steps: target PSNR -> Eq. 8 bound -> plain SZ.
    let target = 80.0;
    println!("derived eb_rel for {target} dB: {:.6e} (Eq. 8)", ebrel_for_psnr(target));

    let run = compress_fixed_psnr(&field, target, &FixedPsnrOptions::default())
        .expect("compression succeeds on finite data");

    println!(
        "compressed {} samples -> {} bytes (ratio {:.1}, {:.2} bits/sample)",
        field.len(),
        run.bytes.len(),
        run.rate.ratio(),
        run.rate.bit_rate()
    );
    println!(
        "target {target} dB -> achieved {:.2} dB (deviation {:+.2} dB)",
        run.outcome.achieved_psnr,
        run.outcome.achieved_psnr - target
    );

    // The container is a regular SZ container; decompress it anywhere.
    let back: Field<f32> = sz::decompress(&run.bytes).expect("valid container");
    let worst = field
        .as_slice()
        .iter()
        .zip(back.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("worst pointwise error: {worst:.3e} (bounded by eb_abs = eb_rel * value range)");

    assert!(run.outcome.achieved_psnr >= target - 1.0);
    println!("OK");
}
