//! Cosmology scenario: NYX-like fields span ten orders of magnitude
//! (log-normal densities), which is where the *pointwise-relative* mode
//! complements fixed-PSNR. Compares three error-control strategies on the
//! baryon-density field:
//!
//! 1. fixed-PSNR (the paper's contribution) — controls aggregate quality,
//! 2. value-range-relative — what fixed-PSNR derives internally,
//! 3. pointwise-relative (log transform) — preserves *every* sample to a
//!    multiplicative factor, which a density field needs for halo finding.
//!
//! ```text
//! cargo run --release --example cosmology_nyx
//! ```

use fixed_psnr::data::{DatasetId, Resolution};
use fixed_psnr::prelude::*;
use fixed_psnr::sz;

fn main() {
    let snapshot = fixed_psnr::data::generate(DatasetId::Nyx, Resolution::Small, 42);
    let density = &snapshot
        .iter()
        .find(|nf| nf.name == "baryon_density")
        .expect("baryon_density exists")
        .data;
    let stats = density.stats();
    println!(
        "baryon density: {} samples, dynamic range {:.1e}x",
        density.len(),
        stats.max / stats.min
    );

    // Strategy 1: fixed-PSNR at 80 dB.
    let run = compress_fixed_psnr(density, 80.0, &FixedPsnrOptions::default())
        .expect("compress");
    println!(
        "\n[fixed-PSNR 80 dB]    achieved {:.2} dB, ratio {:.1}",
        run.outcome.achieved_psnr,
        run.rate.ratio()
    );
    let back: Field<f32> = sz::decompress(&run.bytes).expect("decompress");
    let pw = PointwiseError::between(density, &back);
    println!(
        "                      but max pointwise-relative error is {:.1}% — \
         voids are distorted",
        pw.max_rel * 100.0
    );

    // Strategy 2: the equivalent value-range-relative bound, spelled out.
    let ebrel = ebrel_for_psnr(80.0);
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let bytes = sz::compress(density, &cfg).expect("compress");
    println!(
        "[rel {ebrel:.2e}]     identical pipeline fixed-PSNR drives: {} bytes",
        bytes.len()
    );

    // Strategy 3: pointwise-relative via the log transform.
    let cfg = SzConfig::new(ErrorBound::PointwiseRel(1e-2));
    let bytes = sz::compress(density, &cfg).expect("compress");
    let back: Field<f32> = sz::decompress(&bytes).expect("decompress");
    let pw = PointwiseError::between(density, &back);
    let d = Distortion::between(density, &back);
    println!(
        "[pointwise-rel 1%]    max pointwise-relative error {:.3}% on every sample \
         (PSNR {:.1} dB, ratio {:.1})",
        pw.max_rel * 100.0,
        d.psnr(),
        density.len() as f64 * 4.0 / bytes.len() as f64
    );
    assert!(pw.max_rel <= 0.0101, "pointwise bound violated");

    println!(
        "\ntakeaway: fixed-PSNR controls the aggregate (visual/statistical) quality in\n\
         one pass; for multiplicative per-sample guarantees on log-normal data, use\n\
         the pointwise-relative mode instead — both ship in this library."
    );
}
