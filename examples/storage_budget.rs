//! Storage budgeting: compress to a target *ratio* instead of a target
//! quality, and see what quality the budget buys.
//!
//! ```text
//! cargo run --release --example storage_budget
//! ```

use fixed_psnr::prelude::*;
use fixed_psnr::sz;

fn main() {
    // A textured field standing in for one archive variable. (The small
    // product term matters: a separable sum is predicted exactly by the
    // Lorenzo stage and leaves nothing for a rate target to trade.)
    let field = Field::from_fn_2d(256, 320, |i, j| {
        let x = i as f32 * 0.05;
        let y = j as f32 * 0.04;
        18.0 * (x.sin() + y.cos()) + 2.5 * ((3.1 * x).sin() * (2.3 * y).cos())
    });
    let raw_bytes = field.len() * 4;
    println!("raw field: {} samples, {} bytes", field.len(), raw_bytes);
    println!();

    // "The archive must shrink 10x." One pilot walk models the
    // ratio-quality curve, the curve is inverted for the bound, and at
    // most two refinement passes close the residual.
    let run = compress_fixed_ratio(&field, &FixedRatioOptions::new(10.0))
        .expect("finite data compresses");
    println!(
        "target 10x -> achieved {:.2}x in {} pass(es) (eb_rel {:.3e}{})",
        run.achieved_ratio,
        run.passes,
        run.eb_rel,
        if run.within_tolerance { "" } else { ", outside tolerance" },
    );

    // What did the budget buy? Decode and measure.
    let back: Field<f32> = sz::decompress(&run.bytes).expect("valid container");
    let quality = Distortion::between(&field, &back).psnr();
    println!("quality bought by the 10x budget: {quality:.2} dB PSNR");
    println!();

    // The same request through the mode front door, tighter budget:
    // every error-control goal is one enum away.
    let (bytes, report) = compress_with_mode(
        &field,
        CompressionMode::FixedRatio(25.0),
        &SzConfig::new(ErrorBound::Abs(1.0)),
    )
    .expect("mode dispatch");
    let back: Field<f32> = sz::decompress(&bytes).expect("valid container");
    println!(
        "target 25x -> {:.2}x ({} compressor invocations), {:.2} dB",
        raw_bytes as f64 / bytes.len() as f64,
        report.invocations,
        Distortion::between(&field, &back).psnr(),
    );
}
