//! # fixed-psnr — Fixed-PSNR lossy compression for scientific data
//!
//! A production-quality Rust reproduction of *Tao, Di, Liang, Chen,
//! Cappello — "Fixed-PSNR Lossy Compression for Scientific Data", IEEE
//! CLUSTER 2018* (arXiv:1805.07384), including every substrate the paper
//! builds on:
//!
//! | layer | module | contents |
//! |-------|--------|----------|
//! | contribution | [`core`] | Eq. 2–8 distortion estimation, PSNR→bound inversion, the fixed-PSNR driver, the iterative-search baseline, parallel batch runner |
//! | compressor | [`sz`] | SZ-1.4-style pipeline: Lorenzo prediction, error-controlled uniform quantization, Huffman, LZ |
//! | transform codec | [`transform`] | blockwise orthonormal DCT codec (Theorem 2 witness) |
//! | lossless | [`lossless`] | bit I/O, canonical Huffman, LZ77, DEFLATE-like container |
//! | metrics | [`metrics`] | MSE/NRMSE/PSNR with the paper's definitions, histograms, ratios |
//! | fields | [`field`] | n-dimensional grids, statistics, raw I/O |
//! | data | [`data`] | synthetic ATM/Hurricane/NYX-like data sets |
//! | runtime | [`parallel`] | crossbeam-backed parallel map / thread pool |
//!
//! ## Quickstart
//!
//! ```
//! use fixed_psnr::prelude::*;
//! use fixed_psnr::sz;
//!
//! // A smooth 2-D field standing in for one climate variable.
//! let field = Field::from_fn_2d(128, 128, |i, j| {
//!     ((i as f32 * 0.05).sin() + (j as f32 * 0.04).cos()) * 12.0
//! });
//!
//! // Ask for 80 dB — one pass, no trial-and-error.
//! let run = compress_fixed_psnr(&field, 80.0, &FixedPsnrOptions::default()).unwrap();
//! assert!(run.outcome.achieved_psnr >= 79.0);
//!
//! // The container decompresses with the plain SZ decoder.
//! let back: Field<f32> = sz::decompress(&run.bytes).unwrap();
//! assert_eq!(back.shape(), field.shape());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

/// The paper's contribution: fixed-PSNR estimation, derivation, drivers.
pub use fpsnr_core as core;
/// Synthetic data sets analogous to the paper's evaluation corpus.
pub use datagen as data;
/// n-dimensional field substrate.
pub use ndfield as field;
/// Rate–distortion metrics (paper definitions).
pub use fpsnr_metrics as metrics;
/// Pipeline observability (stage spans, counters, reports).
pub use fpsnr_obs as obs;
/// Parallel runtime.
pub use fpsnr_parallel as parallel;
/// Lossless coding toolkit.
pub use losslesskit as lossless;
/// SZ-style prediction-based compressor.
pub use szlike as sz;
/// Orthogonal-transform codec.
pub use fpsnr_transform as transform;

/// One-stop imports for typical use.
pub mod prelude {
    pub use fpsnr_core::alloc::{
        allocate_snapshot, solve_min_psnr, solve_weighted_mse, AllocFieldRun, AllocObjective,
        AllocOptions, AnyField, SnapshotAllocation, SnapshotField,
    };
    pub use fpsnr_core::batch::{run_batch, run_batch_full, run_batch_summary, FieldRun};
    pub use fpsnr_core::fixed_psnr::{
        compress_fixed_psnr, compress_fixed_psnr_only, compress_fixed_psnr_transform,
        FixedPsnrOptions, FixedPsnrRun,
    };
    pub use fpsnr_core::fixed_ratio::{compress_fixed_ratio, FixedRatioOptions, FixedRatioRun};
    pub use fpsnr_core::mode::{compress_with_mode, CompressionMode, ModeReport};
    pub use fpsnr_core::slab::{compress_slabs, compress_slabs_fixed_psnr, decompress_slabs};
    pub use fpsnr_core::{ebabs_for_psnr, ebrel_for_psnr, psnr_for_ebrel};
    pub use fpsnr_metrics::summary::{AllocFieldStat, FieldFailure, FieldOutcome, SnapshotSummary};
    pub use fpsnr_metrics::{Distortion, PointwiseError, RateStats};
    pub use ndfield::{Field, Scalar, Shape};
    pub use szlike::{ErrorBound, PredictorKind, SzConfig};
}
